"""Chaos for the fault-isolated verification pipeline itself.

The runtime injectors (:mod:`repro.chaos.injector`) attack a rewritten
binary while it *runs*; :class:`PipelineFailureInjector` attacks the
pipeline while it *verifies*: kill a pool worker mid-region, hang the
oracle past the watchdog, tear a published cache entry, truncate the
run journal mid-line.  Every scenario must end the way the tentpole
demands — a completed run whose :class:`~repro.verify.report
.VerifyReport` attributes the fault to the exact region, zero raw
tracebacks, zero silent drops, zero corrupted cache entries left
behind, and byte-identical released output wherever the fault was
survivable.

``python -m repro chaos <workload> --pipeline`` drives
:func:`run_pipeline_chaos`.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.chaos.outcomes import ChaosReport, ScenarioResult
from repro.core.pipeline import rewrite_and_verify
from repro.elf.binary import Binary
from repro.elf.fileformat import save_binary
from repro.isa.extensions import RV64GC, IsaProfile
from repro.resilience.failures import (
    RESOLVED_DEGRADED,
    RESOLVED_RETRIED,
    WORKER_CRASH,
    WORKER_HANG,
)
from repro.resilience.seeds import resolve_seed
from repro.telemetry import Telemetry, use as telemetry_use


class InjectedPipelineKill(BaseException):
    """The injector killed the whole pipeline driver (simulated SIGKILL
    between journal appends).  A ``BaseException`` so no retry ladder or
    fault taxonomy can absorb it — exactly like a real kill."""


@dataclass
class PipelineFailureInjector:
    """Scripted failures for the verification pipeline.  Picklable: the
    process executor ships it to every worker, so ``before_region``
    fires inside the worker that would verify the region.

    ``kill``/``hang``/``error`` map a region *index* to the number of
    attempts to affect: ``{3: 1}`` kills attempt 1 of region 3 (the
    retry then succeeds), ``{3: 99}`` kills every attempt (the region
    quarantines).  ``abort_after_regions`` kills the *driver* (raises
    :class:`InjectedPipelineKill`) once that many region verdicts hit
    the journal.
    """

    kill: dict[int, int] = field(default_factory=dict)
    hang: dict[int, int] = field(default_factory=dict)
    error: dict[int, int] = field(default_factory=dict)
    hang_seconds: float = 30.0
    abort_after_regions: int = 0

    # -- hooks the pipeline calls -------------------------------------------

    def before_region(self, idx: int, attempt: int, record) -> None:
        if attempt <= self.kill.get(idx, 0):
            # An OOM-style kill: no cleanup, no goodbye message.
            os._exit(139)
        if attempt <= self.hang.get(idx, 0):
            time.sleep(self.hang_seconds)
        if attempt <= self.error.get(idx, 0):
            raise RuntimeError(
                f"injected verify error: region {idx} attempt {attempt}")

    def on_journal_record(self, settled: int) -> None:
        if self.abort_after_regions and settled >= self.abort_after_regions:
            raise InjectedPipelineKill(
                f"injected driver kill after {settled} journaled regions")


# -- scenario helpers --------------------------------------------------------


def _binary_digest(binary: Binary) -> str:
    path = Path(tempfile.mkstemp(suffix=".self")[1])
    try:
        save_binary(binary, path)
        return hashlib.sha256(path.read_bytes()).hexdigest()
    finally:
        path.unlink(missing_ok=True)


def _fault_summary(report) -> str:
    return "; ".join(str(f) for f in report.faults) or "no faults"


@dataclass
class _Reference:
    """Fault-free serial baseline every scenario compares against.

    ``rejected_starts`` carries the baseline's own oracle rejections
    (a workload/seed property, possible even with zero injected
    faults); scenarios assert the injection added nothing to them.
    """

    report_dict: dict
    binary_digest: str
    rejected_starts: frozenset[int]


def _run_scenarios(original: Binary, *, target: IsaProfile, jobs: int,
                   seed: int, executor: str) -> list[ScenarioResult]:
    common = dict(seed=seed, oracle_trials=1, max_oracle_regions=0)
    clean = rewrite_and_verify(original.clone(), target, executor="serial",
                               **common)
    reference = _Reference(clean.report.as_dict(),
                           _binary_digest(clean.binary),
                           frozenset(r.start for r in clean.report.rejected))
    records = clean.binary.metadata["chimera"]["patch_records"]
    if not records:
        return [ScenarioResult("pipeline-chaos", False,
                               "workload produced no patched regions")]
    victim = len(records) // 2
    scenarios = []
    for func in (_scenario_worker_crash_retried,
                 _scenario_oracle_hang,
                 _scenario_crash_quarantine_degrade,
                 _scenario_torn_cache_write,
                 _scenario_truncated_journal):
        scenarios.append(func(original, target=target, jobs=jobs,
                              executor=executor, common=common,
                              reference=reference, victim=victim,
                              records=records))
    return scenarios


def _strip_faults(report_dict: dict) -> dict:
    """Drop the fault ledger (and its counts) for output comparison:
    survivable faults may differ, the verified output must not."""
    counts = {k: v for k, v in report_dict.get("counts", {}).items()
              if k not in ("region_faults", "degraded")}
    return dict(report_dict, faults=[], counts=counts)


def _check_clean_outputs(name: str, result, reference: _Reference,
                         *, expect_faults: bool) -> Optional[ScenarioResult]:
    """Shared asserts: survivable faults must not change the release."""
    stripped = _strip_faults(result.report.as_dict())
    ref = _strip_faults(reference.report_dict)
    if stripped != ref:
        return ScenarioResult(
            name, False, "report diverged from the fault-free reference")
    if _binary_digest(result.binary) != reference.binary_digest:
        return ScenarioResult(
            name, False, "released bytes diverged from the reference")
    if expect_faults and not result.report.faults:
        return ScenarioResult(name, False, "injected fault left no ledger entry")
    if not expect_faults and result.report.faults:
        return ScenarioResult(
            name, False, f"unexpected faults: {_fault_summary(result.report)}")
    return None


def _scenario_worker_crash_retried(original, *, target, jobs, executor,
                                   common, reference, victim, records):
    name = "pipeline-worker-crash"
    injector = PipelineFailureInjector(kill={victim: 1})
    result = rewrite_and_verify(
        original.clone(), target, jobs=jobs, executor=executor,
        failure_injector=injector, **common)
    bad = _check_clean_outputs(name, result, reference, expect_faults=True)
    if bad is not None:
        return bad
    faults = result.report.faults
    rec = records[victim]
    if not any(f.fault == WORKER_CRASH and f.start == rec.start
               and f.resolution == RESOLVED_RETRIED for f in faults):
        return ScenarioResult(
            name, False,
            f"crash not attributed to region {rec.start:#x} as retried: "
            f"{_fault_summary(result.report)}")
    return ScenarioResult(
        name, True,
        f"worker kill at region {rec.start:#x} retried; outputs identical")


def _scenario_oracle_hang(original, *, target, jobs, executor, common,
                          reference, victim, records):
    name = "pipeline-oracle-hang"
    injector = PipelineFailureInjector(hang={victim: 1}, hang_seconds=30.0)
    result = rewrite_and_verify(
        original.clone(), target, jobs=jobs, executor=executor,
        region_timeout=1.0, failure_injector=injector, **common)
    bad = _check_clean_outputs(name, result, reference, expect_faults=True)
    if bad is not None:
        return bad
    rec = records[victim]
    if not any(f.fault == WORKER_HANG and f.start == rec.start
               and f.resolution == RESOLVED_RETRIED
               for f in result.report.faults):
        return ScenarioResult(
            name, False,
            f"hang not attributed to region {rec.start:#x} as retried: "
            f"{_fault_summary(result.report)}")
    return ScenarioResult(
        name, True,
        f"watchdog killed hung worker at region {rec.start:#x}; "
        "retry succeeded, outputs identical")


def _scenario_crash_quarantine_degrade(original, *, target, jobs, executor,
                                       common, reference, victim, records):
    name = "pipeline-quarantine-degrade"
    injector = PipelineFailureInjector(kill={victim: 99})
    result = rewrite_and_verify(
        original.clone(), target, jobs=jobs, executor=executor,
        failure_injector=injector, **common)
    report = result.report
    rec = records[victim]
    region_faults = [f for f in report.faults if f.start == rec.start]
    if not region_faults:
        return ScenarioResult(name, False, "no fault attributed to the region")
    final = max(region_faults, key=lambda f: f.attempt)
    if final.resolution != RESOLVED_DEGRADED or not all(
            f.resolution == RESOLVED_RETRIED
            for f in region_faults if f is not final):
        return ScenarioResult(
            name, False,
            f"expected retried... then degraded-trap at {rec.start:#x}, got: "
            f"{_fault_summary(report)}")
    if final.fault != WORKER_CRASH:
        return ScenarioResult(
            name, False, f"final fault is {final.fault}, expected worker-crash")
    # Baseline-relative releasability: the injection must not reject any
    # region the fault-free reference admitted (the reference's own
    # oracle rejections are a workload/seed property, not our doing).
    newly_rejected = ({r.start for r in report.rejected}
                      - reference.rejected_starts - report.degraded_starts)
    if newly_rejected:
        return ScenarioResult(
            name, False,
            "quarantine-and-degrade broke regions the reference admitted: "
            f"{sorted(hex(s) for s in newly_rejected)}")
    if not reference.rejected_starts and not report.releasable:
        return ScenarioResult(name, False, "degraded release not releasable")
    if report.ok:
        return ScenarioResult(
            name, False, "report.ok despite a quarantined region (ledger lies)")
    # Ledger completeness: every patched region of the *degraded* binary
    # has a verdict, and the quarantined window is accounted for.
    verdict_starts = {r.start for r in report.regions}
    record_starts = {r.start
                     for r in result.binary.metadata["chimera"]["patch_records"]}
    if not record_starts <= verdict_starts:
        return ScenarioResult(
            name, False,
            f"ledger incomplete: regions {sorted(verdict_starts - record_starts)}"
            " missing verdicts")
    if rec.start not in verdict_starts:
        return ScenarioResult(name, False, "quarantined region dropped silently")
    # The degraded release must stand on its own through a fresh gate.
    from repro.verify import verify_binary

    recheck = verify_binary(original.clone(), result.binary,
                            seed=common["seed"], oracle_trials=1,
                            executor="serial")
    recheck_new = ({r.start for r in recheck.rejected}
                   - reference.rejected_starts)
    if recheck_new:
        return ScenarioResult(
            name, False,
            "degraded binary failed fresh verification at "
            f"{sorted(hex(s) for s in recheck_new)}: {recheck.summary()}")
    return ScenarioResult(
        name, True,
        f"region {rec.start:#x} quarantined after retries, degraded to trap "
        "fallback, fresh gate admits the release")


def _scenario_torn_cache_write(original, *, target, jobs, executor, common,
                               reference, victim, records):
    name = "pipeline-torn-cache-write"
    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp)
        telemetry = Telemetry()
        with telemetry_use(telemetry):
            first = rewrite_and_verify(original.clone(), target, jobs=jobs,
                                       executor=executor, cache_dir=cache,
                                       **common)
            entries = sorted(cache.glob("*.self"))
            if len(entries) != 1:
                return ScenarioResult(
                    name, False, f"expected 1 cache entry, found {len(entries)}")
            # Tear the published entry mid-file and plant a crash orphan.
            entry = entries[0]
            data = entry.read_bytes()
            entry.write_bytes(data[: len(data) // 2])
            orphan = cache / ".deadbeef.self.tmp"
            orphan.write_bytes(b"half-written")
            os.utime(orphan, (time.time() - 7200, time.time() - 7200))

            second = rewrite_and_verify(original.clone(), target, jobs=jobs,
                                        executor=executor, cache_dir=cache,
                                        **common)
            if second.cache_hit:
                return ScenarioResult(
                    name, False, "torn entry served as a cache hit")
            if telemetry.metrics.total("pipeline.cache_repairs") < 1:
                return ScenarioResult(
                    name, False, "cache_repairs counter never incremented")
            if telemetry.metrics.total("pipeline.cache_orphans_gc") < 1:
                return ScenarioResult(
                    name, False, "crash orphan was not garbage-collected")
            bad = _check_clean_outputs(name, second, reference,
                                      expect_faults=False)
            if bad is not None:
                return bad
            leftovers = sorted(p.name for p in cache.glob(".*.tmp"))
            if leftovers:
                return ScenarioResult(
                    name, False, f"temp files left behind: {leftovers}")
            third = rewrite_and_verify(original.clone(), target, jobs=jobs,
                                       executor=executor, cache_dir=cache,
                                       **common)
            if not third.cache_hit:
                return ScenarioResult(
                    name, False, "repaired entry did not serve a cache hit")
            if third.report.as_dict() != second.report.as_dict():
                return ScenarioResult(
                    name, False, "repaired cache hit diverged from the rebuild")
    return ScenarioResult(
        name, True,
        "torn entry repaired (miss-and-delete), orphan collected, "
        "rebuilt entry byte-identical and hit-able")


def _scenario_truncated_journal(original, *, target, jobs, executor, common,
                                reference, victim, records):
    name = "pipeline-truncated-journal"
    abort_after = max(2, min(4, len(records) - 1))
    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp)
        injector = PipelineFailureInjector(abort_after_regions=abort_after)
        try:
            rewrite_and_verify(original.clone(), target, jobs=jobs,
                               executor=executor, cache_dir=cache,
                               failure_injector=injector, **common)
            return ScenarioResult(
                name, False, "injected driver kill never fired")
        except InjectedPipelineKill:
            pass
        journals = sorted(cache.glob("journal/*.jsonl"))
        if len(journals) != 1:
            return ScenarioResult(
                name, False, f"expected 1 journal, found {len(journals)}")
        journal = journals[0]
        lines = journal.read_bytes()
        if lines.count(b"\n") < abort_after + 1:  # header + records
            return ScenarioResult(
                name, False, "journal did not persist the settled regions")
        # Tear the tail record mid-line, as a real kill mid-write would.
        journal.write_bytes(lines[:-10])

        telemetry = Telemetry()
        with telemetry_use(telemetry):
            resumed = rewrite_and_verify(original.clone(), target, jobs=jobs,
                                         executor=executor, cache_dir=cache,
                                         **common)
        if resumed.resumed_regions != abort_after - 1:
            return ScenarioResult(
                name, False,
                f"resumed {resumed.resumed_regions} regions, expected "
                f"{abort_after - 1} (torn tail must be dropped)")
        bad = _check_clean_outputs(name, resumed, reference,
                                   expect_faults=False)
        if bad is not None:
            return bad
        if journal.exists():
            return ScenarioResult(
                name, False, "journal not deleted after the completed run")
    return ScenarioResult(
        name, True,
        f"driver killed after {abort_after} regions, torn tail dropped, "
        f"resume completed byte-identical from {abort_after - 1} journaled "
        "verdicts")


# -- aggregate ---------------------------------------------------------------


def run_pipeline_chaos(
    original: Binary,
    *,
    target: IsaProfile = RV64GC,
    jobs: int = 2,
    seed: Optional[int] = None,
    executor: str = "process",
) -> ChaosReport:
    """Run every pipeline failure scenario against *original*."""
    report = ChaosReport()
    report.scenarios = _run_scenarios(
        original, target=target, jobs=max(1, jobs),
        seed=resolve_seed(seed), executor=executor)
    return report
