"""Sharded rewrite cache: routing is a pure function of the release
key, shards are independent failure domains (a torn entry or LRU sweep
in one shard can never invalidate another), journals ride inside their
key's shard, and the size budget evicts oldest-last-used at publish."""

import os

import pytest

from repro.core.pipeline import (
    CacheLayout,
    DEFAULT_CACHE_SHARDS,
    cache_gc,
    cache_stats,
    rewrite_and_verify,
)
from repro.isa.extensions import PROFILES
from repro.workloads.spec_profiles import PROFILES as WORKLOADS
from repro.workloads.synthetic import SyntheticBinary

RV64GC = PROFILES["rv64gc"]


def _gcc(scale=256):
    return SyntheticBinary(WORKLOADS["gcc_r"], scale=scale).build()


@pytest.fixture(autouse=True)
def _fixed_seed(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_SEED", "20260806")


class TestCacheLayout:
    def test_routing_is_deterministic_and_in_range(self):
        layout = CacheLayout("/cache", shards=8)
        key = "f52a66d1" + "0" * 56
        assert layout.shard_index(key) == int("f52a66d1", 16) % 8
        assert CacheLayout("/other", shards=8).shard_index(key) == \
            layout.shard_index(key)
        for i in range(64):
            idx = layout.shard_index(f"{i:08x}" + "0" * 56)
            assert 0 <= idx < 8

    def test_every_shard_is_reachable(self):
        layout = CacheLayout("/cache", shards=4)
        seen = {layout.shard_index(f"{i:08x}" + "f" * 56) for i in range(256)}
        assert seen == {0, 1, 2, 3}

    def test_flat_layout_routes_to_root(self, tmp_path):
        layout = CacheLayout(tmp_path, shards=0)
        assert layout.dir_for("ab" * 32) == tmp_path
        assert layout.dirs() == [tmp_path]

    def test_sharded_dirs_and_names(self, tmp_path):
        layout = CacheLayout(tmp_path, shards=4)
        key = "00000005" + "0" * 56
        assert layout.shard_name(key) == "shard-01"
        assert layout.dir_for(key) == tmp_path / "shard-01"
        assert len(layout.dirs()) == 4

    def test_resolve_passthrough_and_none(self, tmp_path):
        layout = CacheLayout(tmp_path, shards=2)
        assert CacheLayout.resolve(None) is None
        assert CacheLayout.resolve(layout) is layout
        fresh = CacheLayout.resolve(str(tmp_path), 3, 10.0)
        assert fresh.shards == 3 and fresh.max_mb == 10.0

    def test_budget_splits_across_shards(self):
        assert CacheLayout("/c", shards=4,
                           max_mb=4.0).shard_budget_bytes == 1024 * 1024
        assert CacheLayout("/c", shards=0,
                           max_mb=1.0).shard_budget_bytes == 1024 * 1024
        assert CacheLayout("/c", shards=4).shard_budget_bytes is None

    def test_default_shard_count(self):
        assert DEFAULT_CACHE_SHARDS >= 2


class TestShardedCacheRuns:
    def test_entry_lands_in_its_shard_and_warm_hits(self, tmp_path):
        layout = CacheLayout(tmp_path, shards=4)
        cold = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=layout)
        assert not cold.cache_hit
        # Exactly one shard holds exactly one committed entry.
        per_shard = [s["entries"] for s in cache_stats(layout)["per_shard"]]
        assert sum(per_shard) == 1 and max(per_shard) == 1
        warm = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=layout)
        assert warm.cache_hit
        assert cold.report.as_dict() == warm.report.as_dict()

    def test_same_key_same_shard_across_processesque_instances(self, tmp_path):
        # Two independently constructed layouts over the same root agree.
        a = CacheLayout(tmp_path, shards=8)
        b = CacheLayout(str(tmp_path), shards=8)
        rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1, cache_dir=a)
        assert rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=b).cache_hit

    def test_torn_entry_in_one_shard_spares_the_others(self, tmp_path):
        layout = CacheLayout(tmp_path, shards=4)
        rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1, cache_dir=layout)
        metas = list(tmp_path.glob("shard-*/*.meta.json"))
        assert len(metas) == 1
        victim_shard = metas[0].parent
        # Tear an unrelated shard: plant a corrupt partial entry there.
        other = next(d for d in layout.dirs() if d != victim_shard)
        other.mkdir(exist_ok=True)
        (other / ("ab" * 32 + ".meta.json")).write_text("{corrupt")
        # The real key's shard is untouched: still a warm hit.
        assert rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=layout).cache_hit

    def test_torn_own_entry_is_a_miss_not_an_error(self, tmp_path):
        layout = CacheLayout(tmp_path, shards=4)
        rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1, cache_dir=layout)
        meta = next(tmp_path.glob("shard-*/*.meta.json"))
        meta.write_text("{torn")
        redo = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=layout)
        assert not redo.cache_hit
        assert rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=layout).cache_hit


class TestLruEviction:
    def test_publish_evicts_oldest_beyond_budget(self, tmp_path):
        from repro.telemetry import Telemetry, use

        # One shard so both keys share a budget; a tiny budget means
        # publishing the second entry must evict the first.
        layout = CacheLayout(tmp_path, shards=1, max_mb=0.001)
        telemetry = Telemetry()
        with use(telemetry):
            rewrite_and_verify(_gcc(scale=256), RV64GC, oracle_trials=1,
                               cache_dir=layout)
            second = rewrite_and_verify(_gcc(scale=512), RV64GC,
                                        oracle_trials=1, cache_dir=layout)
        assert not second.cache_hit
        stats = cache_stats(layout)
        assert stats["entries"] == 1  # the first entry was evicted
        assert telemetry.metrics.total("pipeline.cache_evictions") >= 1
        # The survivor is the just-published (protected) entry.
        assert rewrite_and_verify(_gcc(scale=512), RV64GC, oracle_trials=1,
                                  cache_dir=layout).cache_hit

    def test_generous_budget_evicts_nothing(self, tmp_path):
        layout = CacheLayout(tmp_path, shards=1, max_mb=100.0)
        rewrite_and_verify(_gcc(scale=256), RV64GC, oracle_trials=1,
                           cache_dir=layout)
        rewrite_and_verify(_gcc(scale=512), RV64GC, oracle_trials=1,
                           cache_dir=layout)
        assert cache_stats(layout)["entries"] == 2
        assert rewrite_and_verify(_gcc(scale=256), RV64GC, oracle_trials=1,
                                  cache_dir=layout).cache_hit

    def test_gc_command_enforces_budget_offline(self, tmp_path):
        fat = CacheLayout(tmp_path, shards=1)
        rewrite_and_verify(_gcc(scale=256), RV64GC, oracle_trials=1,
                           cache_dir=fat)
        rewrite_and_verify(_gcc(scale=512), RV64GC, oracle_trials=1,
                           cache_dir=fat)
        capped = CacheLayout(tmp_path, shards=1, max_mb=0.001)
        swept = cache_gc(capped)
        assert swept["evicted"] >= 1
        assert cache_stats(capped)["entries"] <= 1


class TestJournalOrphanGC:
    def test_stale_journal_is_swept_with_telemetry(self, tmp_path):
        from repro.telemetry import Telemetry, use

        layout = CacheLayout(tmp_path, shards=1)
        journal_dir = tmp_path / "shard-00" / "journal"
        journal_dir.mkdir(parents=True)
        stale = journal_dir / ("de" * 32 + ".jsonl")
        stale.write_text('{"kind": "abandoned"}\n')
        os.utime(stale, (1.0, 1.0))  # ancient: well past the TTL
        fresh = journal_dir / ("ad" * 32 + ".jsonl")
        fresh.write_text('{"kind": "live"}\n')
        telemetry = Telemetry()
        with use(telemetry):
            swept = cache_gc(layout)
        assert swept["journals"] == 1
        assert not stale.exists() and fresh.exists()
        assert telemetry.metrics.total("pipeline.journal_orphans_gc") == 1

    def test_pipeline_run_sweeps_its_own_shard(self, tmp_path):
        layout = CacheLayout(tmp_path, shards=1)
        journal_dir = tmp_path / "shard-00" / "journal"
        journal_dir.mkdir(parents=True)
        stale = journal_dir / ("de" * 32 + ".jsonl")
        stale.write_text("junk\n")
        os.utime(stale, (1.0, 1.0))
        rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1, cache_dir=layout)
        assert not stale.exists()

    def test_stats_counts_journals_and_temps(self, tmp_path):
        layout = CacheLayout(tmp_path, shards=2)
        shard = tmp_path / "shard-01"
        (shard / "journal").mkdir(parents=True)
        (shard / "journal" / ("aa" * 32 + ".jsonl")).write_text("x\n")
        (shard / (".hidden.self.tmp")).write_text("partial")
        stats = cache_stats(layout)
        assert stats["journals"] == 1 and stats["temps"] == 1
        by_dir = {s["dir"]: s for s in stats["per_shard"]}
        assert by_dir[str(shard)]["journals"] == 1
