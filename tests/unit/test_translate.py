"""Downgrade-template semantics: each template vs the vector unit.

Strategy: run a short vector program natively (extension core), then run
the *template text* for the same instruction on a base core with the
architectural vector state mirrored in the simulated-register region,
and compare the results element for element.
"""

import pytest

from repro.core.translate import (
    SEW_OFF,
    TranslationContext,
    TranslationError,
    Translator,
    VL_OFF,
    VREG_SIZE,
    VREGS_REGION_SIZE,
    pick_scratch,
)
from repro.elf.binary import Perm
from repro.isa.assembler import assemble
from repro.isa.decoding import decode
from repro.isa.encoding import encode, encode_vtype
from repro.isa.extensions import RV64GC, RV64GCV
from repro.isa.instructions import Instruction
from repro.sim.cpu import Cpu
from repro.sim.faults import BreakpointTrap
from repro.sim.memory import AddressSpace

REGION = 0x20000
DATA = 0x30000


def fresh_cpu(profile=RV64GC):
    space = AddressSpace()
    space.map(".vregs", REGION, VREGS_REGION_SIZE, Perm.RW)
    space.map(".data", DATA, 4096, Perm.RW)
    space.map("[stack]", 0x40000, 4096, Perm.RW)
    cpu = Cpu(space, profile)
    cpu.set_reg(2, 0x40F00)  # sp
    return cpu


def run_asm(cpu: Cpu, asm: str):
    program = assemble(asm + "\nebreak\n", base=0x1000)
    seg = cpu.space.segment_at(0x1000)
    if seg is not None:
        cpu.space.segments.remove(seg)
    cpu.space.map(".text", 0x1000, bytearray(program.code), Perm.RX)
    cpu.flush_decode_cache()
    cpu.pc = 0x1000
    try:
        for _ in range(100_000):
            cpu.step()
        raise AssertionError("no ebreak")
    except BreakpointTrap:
        return cpu


def set_region_state(cpu: Cpu, vl: int, sew: int, regs: dict[int, list[int]]):
    cpu.space.write_u64(REGION + VL_OFF, vl)
    cpu.space.write_u64(REGION + SEW_OFF, sew)
    width = sew // 8
    for v, values in regs.items():
        for i, value in enumerate(values):
            cpu.space.write(REGION + v * VREG_SIZE + i * width,
                            (value & ((1 << sew) - 1)).to_bytes(width, "little"))


def region_elems(cpu: Cpu, v: int, n: int, sew: int = 64) -> list[int]:
    width = sew // 8
    return [
        int.from_bytes(cpu.space.read(REGION + v * VREG_SIZE + i * width, width), "little")
        for i in range(n)
    ]


def translator() -> Translator:
    return Translator(TranslationContext(REGION, gp_value=0x999000))


def translate_and_run(cpu: Cpu, asm_instr: str) -> Cpu:
    """Translate the single instruction in *asm_instr* and execute the body."""
    program = assemble(asm_instr, base=0)
    instr = program.instructions[0]
    body, _ = translator().translate(instr)
    return run_asm(cpu, body)


class TestScratchSelection:
    def test_excludes_requested(self):
        scratch = pick_scratch({5, 6}, 3)
        assert 5 not in scratch and 6 not in scratch

    def test_raises_when_exhausted(self):
        with pytest.raises(TranslationError):
            pick_scratch(set(range(32)), 1)


class TestZbaTemplates:
    @pytest.mark.parametrize("mnem,shift", [("sh1add", 1), ("sh2add", 2), ("sh3add", 3)])
    def test_semantics(self, mnem, shift):
        cpu = fresh_cpu()
        cpu.set_reg(11, 13)
        cpu.set_reg(12, 1000)
        translate_and_run(cpu, f"{mnem} a0, a1, a2")
        assert cpu.get_reg(10) == (13 << shift) + 1000

    def test_scratch_restored(self):
        cpu = fresh_cpu()
        cpu.set_reg(11, 1)
        cpu.set_reg(12, 2)
        before = cpu.snapshot_regs()
        translate_and_run(cpu, "sh1add a0, a1, a2")
        after = cpu.snapshot_regs()
        # Only a0 (the destination) may differ.
        diffs = [i for i in range(1, 32) if before[i] != after[i] and i != 10]
        assert diffs == []

    def test_sp_as_source_compensated(self):
        cpu = fresh_cpu()
        sp = cpu.get_reg(2)
        cpu.set_reg(12, 4)
        translate_and_run(cpu, "sh1add a0, sp, a2")
        assert cpu.get_reg(10) == (sp << 1) + 4
        assert cpu.get_reg(2) == sp  # sp itself restored


class TestVsetvliTemplate:
    def test_clamps_to_vlmax(self):
        cpu = fresh_cpu()
        cpu.set_reg(11, 100)
        translate_and_run(cpu, "vsetvli a0, a1, e64")
        assert cpu.get_reg(10) == 4
        assert cpu.space.read_u64(REGION + VL_OFF) == 4
        assert cpu.space.read_u64(REGION + SEW_OFF) == 64

    def test_small_avl_passthrough(self):
        cpu = fresh_cpu()
        cpu.set_reg(11, 3)
        translate_and_run(cpu, "vsetvli a0, a1, e64")
        assert cpu.get_reg(10) == 3

    def test_rs1_zero_gives_vlmax(self):
        cpu = fresh_cpu()
        translate_and_run(cpu, "vsetvli a0, zero, e32")
        assert cpu.get_reg(10) == 8
        assert cpu.space.read_u64(REGION + SEW_OFF) == 32


class TestVectorMemoryTemplates:
    def test_vle64(self):
        cpu = fresh_cpu()
        for i, v in enumerate([5, 6, 7]):
            cpu.space.write_u64(DATA + 8 * i, v)
        set_region_state(cpu, 3, 64, {})
        cpu.set_reg(10, DATA)
        translate_and_run(cpu, "vle64.v v2, (a0)")
        assert region_elems(cpu, 2, 3) == [5, 6, 7]

    def test_vse64(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 2, 64, {3: [11, 22]})
        cpu.set_reg(10, DATA)
        translate_and_run(cpu, "vse64.v v3, (a0)")
        assert cpu.space.read_u64(DATA) == 11
        assert cpu.space.read_u64(DATA + 8) == 22

    def test_vle32_element_packing(self):
        cpu = fresh_cpu()
        for i, v in enumerate([1, 2, 3, 4, 5]):
            cpu.space.write_u32(DATA + 4 * i, v)
        set_region_state(cpu, 5, 32, {})
        cpu.set_reg(10, DATA)
        translate_and_run(cpu, "vle32.v v1, (a0)")
        assert region_elems(cpu, 1, 5, sew=32) == [1, 2, 3, 4, 5]

    def test_vse_with_sp_base(self):
        """The reduction idiom stores via (sp): the template must
        compensate for its own stack frame."""
        cpu = fresh_cpu()
        set_region_state(cpu, 1, 64, {3: [42]})
        sp = cpu.get_reg(2)
        translate_and_run(cpu, "vse64.v v3, (sp)")
        assert cpu.space.read_u64(sp) == 42

    def test_zero_vl_is_noop(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 0, 64, {})
        cpu.set_reg(10, DATA)
        translate_and_run(cpu, "vle64.v v1, (a0)")
        assert region_elems(cpu, 1, 4) == [0, 0, 0, 0]


class TestArithTemplates:
    @pytest.mark.parametrize("mnem,fn", [
        ("vadd.vv", lambda a, b: a + b),
        ("vsub.vv", lambda a, b: a - b),
        ("vmul.vv", lambda a, b: a * b),
        ("vand.vv", lambda a, b: a & b),
        ("vor.vv", lambda a, b: a | b),
        ("vxor.vv", lambda a, b: a ^ b),
    ])
    def test_vv_ops(self, mnem, fn):
        cpu = fresh_cpu()
        xs, ys = [9, 14, 3], [4, 5, 6]
        set_region_state(cpu, 3, 64, {1: xs, 2: ys})
        translate_and_run(cpu, f"{mnem} v3, v1, v2")
        expect = [fn(a, b) & (2**64 - 1) for a, b in zip(xs, ys)]
        assert region_elems(cpu, 3, 3) == expect

    def test_vv_32bit_wraps(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 6, 32, {1: [0xFFFFFFFF, 2], 2: [1, 3]})
        translate_and_run(cpu, "vadd.vv v3, v1, v2")
        assert region_elems(cpu, 3, 2, sew=32) == [0, 5]

    def test_vmacc(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 2, 64, {1: [2, 3], 2: [10, 20], 3: [100, 200]})
        translate_and_run(cpu, "vmacc.vv v3, v1, v2")
        assert region_elems(cpu, 3, 2) == [120, 260]

    def test_vadd_vx(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 2, 64, {1: [5, 6]})
        cpu.set_reg(11, 100)
        translate_and_run(cpu, "vadd.vx v2, v1, a1")
        assert region_elems(cpu, 2, 2) == [105, 106]

    def test_vadd_vi(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 2, 64, {1: [5, 6]})
        translate_and_run(cpu, "vadd.vi v2, v1, -2")
        assert region_elems(cpu, 2, 2) == [3, 4]

    def test_vmv_v_x(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 3, 64, {})
        cpu.set_reg(13, 77)
        translate_and_run(cpu, "vmv.v.x v4, a3")
        assert region_elems(cpu, 4, 3) == [77, 77, 77]

    def test_vmv_v_i(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 2, 64, {})
        translate_and_run(cpu, "vmv.v.i v4, 7")
        assert region_elems(cpu, 4, 2) == [7, 7]

    def test_vredsum(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 3, 64, {1: [10, 20, 30], 2: [5]})
        translate_and_run(cpu, "vredsum.vs v4, v1, v2")
        assert region_elems(cpu, 4, 1) == [65]

    def test_registers_preserved_by_arith(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 2, 64, {1: [1, 2], 2: [3, 4]})
        for i in range(5, 32):
            if i != 2:
                cpu.set_reg(i, 0x1000 + i)
        before = cpu.snapshot_regs()
        translate_and_run(cpu, "vadd.vv v3, v1, v2")
        assert cpu.snapshot_regs() == before


class TestModes:
    def test_empty_mode_replays_source(self):
        t = Translator(TranslationContext(REGION, 0), mode="empty")
        body, scratch = t.translate(Instruction("vadd.vv", vd=1, vs2=2, vs1=3))
        assert scratch == []
        assert "vadd.vv" in body

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Translator(TranslationContext(REGION, 0), mode="wat")

    def test_untranslatable_raises(self):
        t = translator()
        with pytest.raises(TranslationError):
            t.translate(Instruction("lui", rd=1, imm=0))

    def test_can_translate(self):
        t = translator()
        assert t.can_translate(Instruction("vadd.vv", vd=1, vs2=2, vs1=3))
        assert not t.can_translate(Instruction("add", rd=1, rs1=2, rs2=3))
