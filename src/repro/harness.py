"""Shared execution harness: build -> rewrite -> run -> compare.

Benchmarks and integration tests both need "run binary B, rewritten by
system S, on a core with profile P, and give me cycles + counters"; this
module is that one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.armore import ArmoreRewriter, ArmoreRuntime
from repro.baselines.fam import FamRuntime
from repro.baselines.safer import SaferRewriter, SaferRuntime
from repro.baselines.strawman import StrawmanPatcher
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.binary import Binary
from repro.elf.loader import make_process
from repro.isa.extensions import IsaProfile, RV64GC, RV64GCV
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.sim.machine import Core, Kernel, RunResult

#: Default instruction budget for harness runs.
MAX_INSTRUCTIONS = 80_000_000


@dataclass
class SystemRun:
    """One complete run of one system on one binary."""

    system: str
    result: RunResult
    rewrite_stats: Optional[dict] = None
    runtime_stats: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def cycles(self) -> int:
        return self.result.cycles


def run_native(binary: Binary, profile: IsaProfile = RV64GCV, *,
               arch: ArchParams = DEFAULT_ARCH,
               max_instructions: int = MAX_INSTRUCTIONS) -> SystemRun:
    """Run the unmodified binary (the ideal / native-compilation bar)."""
    proc = make_process(binary)
    result = Kernel(arch).run(proc, Core(0, profile, arch), max_instructions=max_instructions)
    return SystemRun("native", result)


def run_chimera(
    binary: Binary,
    target_profile: IsaProfile,
    *,
    arch: ArchParams = DEFAULT_ARCH,
    mode: str = "full",
    batch_blocks: bool = True,
    shift_exits: bool = True,
    enable_upgrades: bool = True,
    run_profile: Optional[IsaProfile] = None,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> SystemRun:
    """Rewrite with CHBP and run on a *target_profile* core."""
    rewriter = ChimeraRewriter(
        arch=arch, mode=mode, batch_blocks=batch_blocks,
        shift_exits=shift_exits, enable_upgrades=enable_upgrades,
    )
    rewrite = rewriter.rewrite(binary, target_profile)
    proc = make_process(rewrite.binary)
    kernel = Kernel(arch)
    runtime = ChimeraRuntime(rewrite.binary, rewriter=rewriter, original=binary)
    runtime.install(kernel)
    core = Core(0, run_profile or target_profile, arch)
    result = kernel.run(proc, core, max_instructions=max_instructions)
    return SystemRun("chimera", result, rewrite.stats.as_dict(), runtime.stats.as_dict())


def run_strawman(
    binary: Binary,
    target_profile: IsaProfile,
    *,
    arch: ArchParams = DEFAULT_ARCH,
    mode: str = "full",
    run_profile: Optional[IsaProfile] = None,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> SystemRun:
    """Rewrite with trap-everywhere strawman patching and run."""
    patcher = StrawmanPatcher(
        binary, target_profile, arch=arch, mode=mode,
        batch_blocks=False, enable_upgrades=False,
    )
    rewritten = patcher.patch()
    proc = make_process(rewritten)
    kernel = Kernel(arch)
    runtime = ChimeraRuntime(rewritten)
    runtime.install(kernel)
    core = Core(0, run_profile or target_profile, arch)
    result = kernel.run(proc, core, max_instructions=max_instructions)
    return SystemRun("strawman", result, patcher.stats.as_dict(), runtime.stats.as_dict())


def run_safer(
    binary: Binary,
    target_profile: IsaProfile,
    *,
    arch: ArchParams = DEFAULT_ARCH,
    mode: str = "full",
    run_profile: Optional[IsaProfile] = None,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> SystemRun:
    """Rewrite with Safer-style regeneration and run."""
    rewriter = SaferRewriter(arch=arch, mode=mode)
    res = rewriter.rewrite(binary, target_profile)
    proc = make_process(res.binary)
    kernel = Kernel(arch)
    runtime = SaferRuntime(res.binary)
    runtime.install(kernel)
    core = Core(0, run_profile or target_profile, arch)
    result = kernel.run(proc, core, max_instructions=max_instructions)
    return SystemRun(
        "safer", result, res.stats.as_dict(),
        {"checks": runtime.checks, "corrections": runtime.corrections},
    )


def run_armore(
    binary: Binary,
    target_profile: IsaProfile,
    *,
    arch: ArchParams = DEFAULT_ARCH,
    mode: str = "full",
    run_profile: Optional[IsaProfile] = None,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> SystemRun:
    """Rewrite ARMore-style and run."""
    rewriter = ArmoreRewriter(arch=arch, mode=mode)
    res = rewriter.rewrite(binary, target_profile)
    proc = make_process(res.binary)
    kernel = Kernel(arch)
    runtime = ArmoreRuntime(res.binary)
    runtime.install(kernel)
    core = Core(0, run_profile or target_profile, arch)
    cpu = kernel.make_cpu(proc, core)
    runtime.attach_cpu(cpu)
    result = kernel.run(proc, core, cpu=cpu, max_instructions=max_instructions)
    return SystemRun("armore", result, res.stats.as_dict(), {"traps": runtime.traps})


def run_multiverse(
    binary: Binary,
    target_profile: IsaProfile,
    *,
    arch: ArchParams = DEFAULT_ARCH,
    mode: str = "full",
    run_profile: Optional[IsaProfile] = None,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> SystemRun:
    """Rewrite Multiverse-style (always-lookup regeneration) and run."""
    from repro.baselines.multiverse import MultiverseRewriter, MultiverseRuntime

    rewriter = MultiverseRewriter(arch=arch, mode=mode)
    res = rewriter.rewrite(binary, target_profile)
    proc = make_process(res.binary)
    kernel = Kernel(arch)
    runtime = MultiverseRuntime(res.binary)
    runtime.install(kernel)
    core = Core(0, run_profile or target_profile, arch)
    result = kernel.run(proc, core, max_instructions=max_instructions)
    return SystemRun(
        "multiverse", result, res.stats.as_dict(),
        {"lookups": runtime.checks, "corrections": runtime.corrections},
    )


def run_fam(
    binary: Binary,
    *,
    arch: ArchParams = DEFAULT_ARCH,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> SystemRun:
    """Run the unmodified binary under fault-and-migrate (base first)."""
    proc = make_process(binary)
    fam = FamRuntime(Kernel(arch))
    outcome = fam.run(
        proc,
        Core(0, RV64GC, arch),
        Core(1, RV64GCV, arch),
        max_instructions=max_instructions,
    )
    return SystemRun("fam", outcome.result, None, {"migrations": outcome.migrations})


#: Named accessors for sweep-style benchmarks.
REWRITER_RUNNERS = {
    "chimera": run_chimera,
    "strawman": run_strawman,
    "safer": run_safer,
    "armore": run_armore,
    "multiverse": run_multiverse,
}
