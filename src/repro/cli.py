"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``build``    — build a workload binary to a .self image
* ``disasm``   — disassemble a .self image
* ``rewrite``  — rewrite an image for a target ISA profile (chimera /
  safer / armore / strawman)
* ``run``      — load and execute an image on a simulated core, with the
  matching runtime installed automatically; given a workload name
  instead of a file it drives the full traced pipeline
* ``trace``    — run one workload through the instrumented
  build→rewrite→execute→schedule pipeline and dump Chrome-trace +
  metrics JSON (``--telemetry-out`` on run/chaos/resilience does the
  same for those commands)
* ``profiles`` — list the SPEC/app profiles and workloads available
* ``verify``   — static admission gate: check every patched region of a
  rewrite (encoding, target, CFG, differential oracle) before release,
  optionally cross-checked against a chaos sweep
* ``chaos``    — adversarial fault-injection harness: sweep every byte
  of every patched region and run the runtime-corruption scenarios
* ``resilience`` — core-failure scenarios: kill/flake cores mid-task,
  drop migrations, corrupt checkpoints, lose the whole extension pool —
  and assert forward progress with structured faults
* ``serve``    — batch translation service: accept many rewrite jobs
  over a local socket, deduplicate through the sharded rewrite cache,
  stream ledgers back byte-identical to ``verify --report``
* ``submit``   — fleet client: fan binaries/workloads at a running
  server with bounded concurrency and retries; writes per-job ledgers
  and a campaign manifest
* ``cache``    — rewrite-cache admin: per-shard stats, orphan GC, LRU
  eviction to a size budget
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import nullcontext

from repro.elf.fileformat import load_binary_file, save_binary
from repro.elf.loader import make_process
from repro.isa.extensions import PROFILES as ISA_PROFILES
from repro.sim.cost import DEFAULT_ARCH
from repro.sim.machine import Core, Kernel


def _isa(name: str):
    try:
        return ISA_PROFILES[name]
    except KeyError:
        raise SystemExit(f"unknown ISA profile {name!r}; choose from {sorted(ISA_PROFILES)}")


def _add_perf_flags(parser: argparse.ArgumentParser) -> None:
    """The shared performance flags (run/verify/chaos/resilience)."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="verification workers "
                             "(1 = serial; results are identical either way)")
    parser.add_argument("--executor", choices=("serial", "thread", "process"),
                        default=None,
                        help="verification executor (default: process when "
                             "--jobs > 1, else serial); process isolates "
                             "worker crashes and hangs from the release")
    parser.add_argument("--region-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock watchdog per region under "
                             "--executor process (default: 60)")
    parser.add_argument("--no-block-cache", action="store_true",
                        help="disable the superblock execution engine; "
                             "every CPU runs the plain interpreter loop")
    _add_trace_flags(parser)
    parser.add_argument("--rewrite-cache", metavar="DIR", default=None,
                        help="content-addressed cache of verified rewrites; "
                             "hits skip both translation and verification")
    _add_cache_flags(parser)


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    """The trace-tier knobs (run/verify/chaos/resilience/serve)."""
    parser.add_argument("--no-trace-cache", action="store_true",
                        help="disable the hot-trace tier; hot code still "
                             "runs through the superblock cache but stops "
                             "at every branch")
    parser.add_argument("--trace-threshold", type=int, default=None,
                        metavar="N",
                        help="block-cache dispatches at one entry pc before "
                             "a trace is recorded (default: 16)")


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-shards", type=int, default=0, metavar="N",
                        help="shard the rewrite cache (and its journals) "
                             "across N subdirectories keyed by release-key "
                             "prefix (0 = flat legacy layout)")
    parser.add_argument("--cache-max-mb", type=float, default=None,
                        metavar="MB",
                        help="LRU size budget for the rewrite cache; "
                             "oldest entries are evicted at publish time "
                             "(split evenly across shards)")


def _cache_layout(args: argparse.Namespace):
    """CacheLayout (or None) from --rewrite-cache/--cache-shards/--cache-max-mb."""
    from repro.core.pipeline import CacheLayout

    return CacheLayout.resolve(args.rewrite_cache,
                               getattr(args, "cache_shards", 0),
                               getattr(args, "cache_max_mb", None))


def _telemetry_scope(args: argparse.Namespace):
    """(context manager, Telemetry | None) for a command's --telemetry-out."""
    outdir = getattr(args, "telemetry_out", None)
    if not outdir:
        return nullcontext(), None
    from repro.telemetry import Telemetry, use

    telemetry = Telemetry()
    return use(telemetry), telemetry


def _write_telemetry(telemetry, outdir) -> None:
    paths = telemetry.write(outdir)
    print(f"telemetry: wrote {paths['trace']} and {paths['metrics']}",
          file=sys.stderr)


def cmd_build(args: argparse.Namespace) -> int:
    binary = _resolve_workload(args.workload, variant=args.variant, scale=args.scale)
    save_binary(binary, args.output)
    print(f"wrote {args.output}: entry={binary.entry:#x}, "
          f"text={binary.text.size} bytes")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    from repro.isa.decoding import IllegalEncodingError, decode
    from repro.isa.disassembler import format_instruction

    binary = load_binary_file(args.image)
    section = binary.section(args.section)
    offset = 0
    while offset < section.size:
        addr = section.addr + offset
        try:
            instr = decode(section.data, offset, addr=addr)
        except IllegalEncodingError as exc:
            print(f"{addr:8x}:\t....\t<{exc.kind}>")
            offset += 2
            continue
        print(format_instruction(instr))
        offset += instr.length
    return 0


def cmd_rewrite(args: argparse.Namespace) -> int:
    binary = load_binary_file(args.image)
    profile = _isa(args.target)
    arch = DEFAULT_ARCH.scaled(args.scale) if args.scale > 1 else DEFAULT_ARCH
    if args.system == "chimera":
        from repro.core.rewriter import ChimeraRewriter

        result = ChimeraRewriter(arch=arch, mode=args.mode).rewrite(binary, profile)
        out, stats = result.binary, result.stats.as_dict()
    elif args.system == "safer":
        from repro.baselines.safer import SaferRewriter

        result = SaferRewriter(arch=arch, mode=args.mode).rewrite(binary, profile)
        out, stats = result.binary, result.stats.as_dict()
    elif args.system == "armore":
        from repro.baselines.armore import ArmoreRewriter

        result = ArmoreRewriter(arch=arch, mode=args.mode).rewrite(binary, profile)
        out, stats = result.binary, result.stats.as_dict()
    elif args.system == "strawman":
        from repro.baselines.strawman import rewrite_strawman

        result = rewrite_strawman(binary, profile, arch=arch, mode=args.mode)
        out, stats = result.binary, result.stats.as_dict()
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown system {args.system!r}")
    save_binary(out, args.output)
    print(f"wrote {args.output}")
    for key, value in stats.items():
        if value:
            print(f"  {key}: {value}")
    return 0


def _report_run(args: argparse.Namespace, *, exit_code: int, cycles: int,
                instret: int, counters: dict, fault, output: bytes,
                workload: str | None = None,
                hot_blocks: list | None = None) -> int:
    """Shared run-result reporting: human text or --json; exit code
    semantics are identical in both modes (0 iff the guest succeeded)."""
    ok = exit_code == 0 and fault is None
    if getattr(args, "json", False):
        payload = {
            "exit_code": exit_code,
            "ok": ok,
            "cycles": cycles,
            "instret": instret,
            "counters": {k: v for k, v in counters.items() if v},
            "fault": str(fault) if fault is not None else None,
            "output": output.decode("utf-8", errors="replace"),
        }
        if workload is not None:
            payload["workload"] = workload
        if hot_blocks:
            payload["hot_blocks"] = [
                {"pc": f"{pc:#x}", "hits": hits} for pc, hits in hot_blocks]
        json.dump(payload, sys.stdout, indent=1)
        sys.stdout.write("\n")
    else:
        if output:
            sys.stdout.write(output.decode("utf-8", errors="replace"))
        print(f"exit={exit_code} cycles={cycles} "
              f"instret={instret}" + (f" fault={fault}" if fault else ""))
        interesting = {k: v for k, v in counters.items() if v}
        if interesting:
            print(f"counters: {interesting}")
        if hot_blocks:
            print(_hot_block_table(hot_blocks))
    return 0 if ok else 1


def _hot_block_table(hot_blocks: list) -> str:
    """Render the per-entry-pc hot-block histogram as an aligned table."""
    lines = ["hot blocks (entry pc, cached dispatches):"]
    for pc, hits in hot_blocks:
        lines.append(f"  {pc:>#12x}  {hits}")
    return "\n".join(lines)


def cmd_run(args: argparse.Namespace) -> int:
    if not os.path.exists(args.image):
        # Not an image file: treat it as a workload name and drive the
        # full traced pipeline (build -> rewrite -> execute -> probe).
        return _run_workload(args, args.image)
    binary = load_binary_file(args.image)
    profile = _isa(args.core)
    scope, telemetry = _telemetry_scope(args)
    with scope:
        kernel = Kernel(block_cache=not args.no_block_cache,
                        trace_cache=not args.no_trace_cache,
                        trace_threshold=args.trace_threshold)
        # Install whichever runtime the image's rewriting metadata calls for.
        if "chimera" in binary.metadata:
            from repro.core.runtime import ChimeraRuntime

            ChimeraRuntime(binary).install(kernel)
        if "safer" in binary.metadata:
            from repro.baselines.safer import SaferRuntime

            SaferRuntime(binary).install(kernel)
        if "multiverse" in binary.metadata:
            from repro.baselines.multiverse import MultiverseRuntime

            MultiverseRuntime(binary).install(kernel)
        if "armore" in binary.metadata:
            from repro.baselines.armore import ArmoreRuntime

            ArmoreRuntime(binary).install(kernel)
        proc = make_process(binary)
        result = kernel.run(proc, Core(0, profile),
                            max_instructions=args.max_instructions)
    if telemetry is not None:
        _write_telemetry(telemetry, args.telemetry_out)
    return _report_run(
        args, exit_code=result.exit_code, cycles=result.cycles,
        instret=result.instret, counters=result.counters,
        fault=result.fault, output=result.output)


def _run_workload(args: argparse.Namespace, name: str) -> int:
    from repro.telemetry.pipeline import run_traced_workload

    try:
        run = run_traced_workload(
            name,
            target=args.core if args.core in ("rv64gc", "rv64gcv") else "rv64gc",
            max_instructions=args.max_instructions,
            jobs=args.jobs,
            cache_dir=_cache_layout(args),
            executor=args.executor,
            hot_blocks=getattr(args, "hot_blocks", 0),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    outdir = getattr(args, "telemetry_out", None)
    if outdir:
        _write_telemetry(run.telemetry, outdir)
    return _report_run(
        args, exit_code=run.exit_code, cycles=run.cycles,
        instret=run.instret, counters=run.counters,
        fault=run.fault, output=run.output, workload=name,
        hot_blocks=run.hot_blocks)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry.pipeline import run_traced_workload, verify_four_layers

    try:
        run = run_traced_workload(
            name=args.workload, variant=args.variant, scale=args.scale,
            target=args.target, max_instructions=args.max_instructions,
            hot_blocks=args.hot_blocks)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if getattr(args, "json", False):
        return _report_run(
            args, exit_code=run.exit_code, cycles=run.cycles,
            instret=run.instret, counters=run.counters,
            fault=run.fault, output=run.output, workload=args.workload,
            hot_blocks=run.hot_blocks)
    _write_telemetry(run.telemetry, args.output)
    metrics = run.telemetry.metrics
    spans = run.telemetry.tracer.completed
    print(f"workload={args.workload} exit={run.exit_code} "
          f"cycles={run.cycles} instret={run.instret}")
    print(f"telemetry: {len(spans)} spans, {len(metrics)} metric series")
    if run.hot_blocks:
        print(_hot_block_table(run.hot_blocks))
    missing = verify_four_layers(metrics)
    if missing:
        print(f"WARNING: layers without data: {', '.join(missing)}")
    return 0 if run.ok else 1


def _resolve_workload(name: str, *, variant: str = "ext", scale: int = 128):
    """Build a workload binary by kernel name or synthetic-profile name."""
    from repro.telemetry.pipeline import resolve_workload

    try:
        return resolve_workload(name, variant=variant, scale=scale)
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.pipeline import rewrite_and_verify
    from repro.resilience.seeds import replay_hint, resolve_seed

    seed = resolve_seed(args.seed)
    original = _resolve_workload(args.workload, scale=args.scale)
    target = _isa(args.target)
    scope, telemetry = _telemetry_scope(args)
    with scope:
        extra = {}
        if args.region_timeout is not None:
            extra["region_timeout"] = args.region_timeout
        pipe = rewrite_and_verify(
            original, target, seed=seed,
            oracle_trials=args.oracle_trials,
            max_oracle_regions=args.max_oracle_regions,
            jobs=args.jobs,
            cache_dir=_cache_layout(args),
            executor=args.executor,
            resume=not args.no_resume,
            **extra,
        )
        report = pipe.report
        escapes = 0
        if args.sweep_check:
            from repro.chaos.harness import SWEEP_MODES, sweep_binary
            from repro.chaos.outcomes import ADMISSION_ESCAPE

            for mode in SWEEP_MODES:
                sweep = sweep_binary(original, mode=mode, target=target,
                                     jobs=args.jobs)
                escapes += sum(1 for r in sweep.results
                               if r.outcome == ADMISSION_ESCAPE)
                print(sweep.summary())
    if telemetry is not None:
        _write_telemetry(telemetry, args.telemetry_out)
    if pipe.cache_hit:
        print("verify: rewrite-cache hit (translation + verification skipped)",
              file=sys.stderr)
    print(report.summary())
    if args.report:
        report.write_json(args.report)
        print(f"verify: wrote {args.report}", file=sys.stderr)
    if args.sweep_check:
        print(f"sweep cross-check: {escapes} admission escape(s)")
    if not report.ok or escapes:
        print(f"seed: {seed} — {replay_hint(seed)}")
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import run_chaos
    from repro.resilience.seeds import replay_hint, resolve_seed

    seed = resolve_seed(args.seed)
    binary = _resolve_workload(args.workload, scale=args.scale)
    if getattr(args, "service", False):
        from repro.chaos import run_service_chaos

        scope, telemetry = _telemetry_scope(args)
        with scope:
            report = run_service_chaos(
                binary, target=_isa(args.target), jobs=args.jobs,
                seed=seed)
        if telemetry is not None:
            _write_telemetry(telemetry, args.telemetry_out)
        for scenario in report.scenarios:
            status = "PASS" if scenario.passed else "FAIL"
            print(f"{status} {scenario.name}: {scenario.detail}")
        if not report.ok:
            print(f"seed: {seed} — {replay_hint(seed)}")
            return 1
        return 0
    if args.pipeline:
        from repro.chaos import run_pipeline_chaos

        scope, telemetry = _telemetry_scope(args)
        with scope:
            report = run_pipeline_chaos(
                binary, target=_isa(args.target), jobs=args.jobs,
                seed=seed, executor=args.executor or "process")
        if telemetry is not None:
            _write_telemetry(telemetry, args.telemetry_out)
        for scenario in report.scenarios:
            status = "PASS" if scenario.passed else "FAIL"
            print(f"{status} {scenario.name}: {scenario.detail}")
        if not report.ok:
            print(f"seed: {seed} — {replay_hint(seed)}")
            return 1
        return 0
    scope, telemetry = _telemetry_scope(args)
    with scope:
        report = run_chaos(
            binary,
            target=_isa(args.target),
            max_regions=args.max_regions,
            scenarios=not args.no_scenarios,
            seed=seed,
            jobs=args.jobs,
        )
    if telemetry is not None:
        _write_telemetry(telemetry, args.telemetry_out)
    if args.verbose:
        for sweep in report.sweeps:
            print(f"-- {sweep.mode} sweep --")
            for result in sweep.results:
                print(f"  {result}")
    print(report.summary())
    if not report.ok:
        print(f"seed: {seed} — {replay_hint(seed)}")
        return 1
    return 0


def cmd_resilience(args: argparse.Namespace) -> int:
    from repro.resilience.scenarios import run_all, run_scenario
    from repro.resilience.seeds import replay_hint, resolve_seed

    seed = resolve_seed(args.seed)
    scope, telemetry = _telemetry_scope(args)
    with scope:
        if args.scenario == "all":
            results = run_all(seed)
        else:
            try:
                results = [run_scenario(args.scenario, seed=seed)]
            except ValueError as exc:
                raise SystemExit(str(exc))
    if telemetry is not None:
        _write_telemetry(telemetry, args.telemetry_out)
    for result in results:
        print(result)
    failed = [r for r in results if not r.passed]
    print(f"resilience verdict: {'PASS' if not failed else 'FAIL'} "
          f"({len(results) - len(failed)}/{len(results)} scenarios)")
    if failed:
        print(f"seed: {seed} — {replay_hint(seed)}")
        return 1
    return 0


def cmd_profiles(args: argparse.Namespace) -> int:
    from repro.workloads.programs import ALL_WORKLOADS
    from repro.workloads.spec_profiles import PROFILES

    print("kernel workloads (use with build <name> --variant base|ext):")
    for name in sorted(ALL_WORKLOADS):
        print(f"  {name}")
    print("\nsynthetic benchmark profiles (use with build <name> --scale N):")
    for name, p in sorted(PROFILES.items()):
        print(f"  {name:14s} {p.code_size_mb:6.2f} MB  ext {p.ext_inst_pct:.2f}%  ({p.suite})")
    return 0


def _service_address(args: argparse.Namespace) -> str:
    if getattr(args, "socket", None):
        return f"unix:{args.socket}"
    if getattr(args, "address", None):
        return args.address
    raise SystemExit("need --socket PATH or --address tcp:HOST:PORT")


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.pipeline import CacheLayout
    from repro.service.server import serve

    if not args.socket and args.port is None:
        raise SystemExit("serve needs --socket PATH or --port N")
    # The service always shards (--cache-shards 0 means "default", not
    # the flat legacy layout a solo `verify --rewrite-cache` gets).
    from repro.core.pipeline import DEFAULT_CACHE_SHARDS

    layout = CacheLayout.resolve(args.cache,
                                 args.cache_shards or DEFAULT_CACHE_SHARDS,
                                 args.cache_max_mb)
    scope, telemetry = _telemetry_scope(args)

    def ready(address: str) -> None:
        print(f"serve: listening on {address} "
              f"(shards={layout.shards}, workers={args.jobs or os.cpu_count()})",
              file=sys.stderr, flush=True)

    with scope:
        try:
            stats = asyncio.run(serve(
                layout,
                socket_path=args.socket,
                host=args.host, port=args.port,
                jobs=args.jobs,
                executor=args.executor,
                oracle_trials=args.oracle_trials,
                region_timeout=args.region_timeout,
                max_inflight=args.max_inflight,
                max_queue=args.max_queue,
                idle_timeout=args.idle_timeout or None,
                ready=ready,
            ))
        except KeyboardInterrupt:
            print("serve: interrupted", file=sys.stderr)
            return 130
    if telemetry is not None:
        _write_telemetry(telemetry, args.telemetry_out)
    json.dump(stats.as_dict(), sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import client

    address = _service_address(args)
    if args.wait:
        if not client.wait_for_server(address, timeout=args.wait):
            print(f"submit: no server at {address} after {args.wait}s",
                  file=sys.stderr)
            return 1
    if args.stats:
        reply = client.server_stats(address)
        json.dump(reply, sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
    status = 0
    if args.sources:
        on_event = None
        if args.verbose:
            def on_event(event):  # noqa: E306
                if event.get("event") == "progress":
                    print(f"  [{event.get('id')}] {event.get('stage')}",
                          file=sys.stderr)
        result = client.run_campaign(
            address, args.sources,
            concurrency=args.concurrency,
            out_dir=args.out,
            on_event=on_event,
            repeat=args.repeat,
            target=args.target, variant=args.variant, scale=args.scale,
            seed=args.seed, oracle_trials=args.oracle_trials,
            deadline_ms=args.deadline_ms,
        )
        for record in result.records:
            if record.get("status") == "ok":
                verdict = "ok" if record.get("verify_ok") else "VERIFY-FAIL"
                print(f"{record['id']}: {verdict} cache={record.get('cache')} "
                      f"key={str(record.get('key'))[:12]} "
                      f"{record.get('seconds', 0):.3f}s")
            else:
                fault = record.get("fault") or {}
                print(f"{record['id']}: FAILED {fault.get('fault')}: "
                      f"{fault.get('detail')}")
        print(f"campaign: {result.succeeded}/{len(result.records)} ok "
              f"in {result.seconds:.3f}s, by_cache={result.by_cache}")
        if result.manifest_path:
            print(f"campaign: wrote {result.manifest_path}", file=sys.stderr)
        status = 0 if result.ok else 1
    if args.shutdown:
        client.shutdown_server(address)
        print("submit: server shut down", file=sys.stderr)
    if not args.sources and not args.stats and not args.shutdown:
        raise SystemExit("submit: nothing to do "
                         "(give sources, --stats, or --shutdown)")
    return status


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.core.pipeline import CacheLayout, cache_gc, cache_stats

    layout = CacheLayout.resolve(args.cache, args.cache_shards,
                                 args.cache_max_mb)
    if args.action == "stats":
        payload = cache_stats(layout)
    else:
        extra = {}
        if args.ttl is not None:
            extra["ttl"] = args.ttl
        payload = cache_gc(layout, **extra)
    json.dump(payload, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chimera reproduction: ISAX heterogeneous computing via binary rewriting",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="build a workload to a .self image")
    p.add_argument("workload")
    p.add_argument("--variant", choices=("base", "ext"), default="ext")
    p.add_argument("--scale", type=int, default=128, help="synthetic-profile code-size divisor")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_build)

    p = sub.add_parser("disasm", help="disassemble an image")
    p.add_argument("image")
    p.add_argument("--section", default=".text")
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser("rewrite", help="rewrite an image for a target profile")
    p.add_argument("image")
    p.add_argument("--system", choices=("chimera", "safer", "armore", "strawman"),
                   default="chimera")
    p.add_argument("--target", default="rv64gc")
    p.add_argument("--mode", choices=("full", "empty"), default="full")
    p.add_argument("--scale", type=int, default=1, help="ArchParams scale divisor")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_rewrite)

    p = sub.add_parser("run", help="execute an image (or workload name) on a simulated core")
    p.add_argument("image",
                   help=".self image path, or a workload/profile name to "
                        "drive through the full traced pipeline")
    p.add_argument("--core", default="rv64gcv")
    p.add_argument("--max-instructions", type=int, default=50_000_000)
    p.add_argument("--json", action="store_true",
                   help="emit the run result as JSON (same exit-code semantics)")
    p.add_argument("--hot-blocks", type=int, default=0, metavar="N",
                   help="report the N hottest block-cache entry pcs "
                        "(workload runs only; adds a profiling pass)")
    p.add_argument("--telemetry-out", metavar="DIR", default=None,
                   help="write trace.json + metrics.json into DIR")
    _add_perf_flags(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "trace",
        help="run one workload through the instrumented build->rewrite->"
             "execute->schedule pipeline and dump trace.json + metrics.json")
    p.add_argument("workload", help="kernel workload or synthetic-profile name")
    p.add_argument("--variant", choices=("base", "ext"), default="ext")
    p.add_argument("--scale", type=int, default=128,
                   help="synthetic-profile code-size divisor")
    p.add_argument("--target", default="rv64gc",
                   help="base-core profile the rewrite targets")
    p.add_argument("--max-instructions", type=int, default=50_000_000)
    p.add_argument("--hot-blocks", type=int, default=0, metavar="N",
                   help="also profile and print the N hottest block-cache "
                        "entry pcs (trace-threshold tuning aid)")
    p.add_argument("--json", action="store_true",
                   help="emit the run result (and any --hot-blocks "
                        "histogram) as JSON instead of writing telemetry")
    p.add_argument("-o", "--output", metavar="DIR", default="telemetry-out",
                   help="directory for trace.json + metrics.json")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("profiles", help="list workloads and benchmark profiles")
    p.set_defaults(fn=cmd_profiles)

    p = sub.add_parser(
        "verify",
        help="static admission gate: verify every patched region of a "
             "rewrite before release")
    p.add_argument("workload", help="kernel workload or synthetic-profile name")
    p.add_argument("--target", default="rv64gc", help="base core the rewrite targets")
    p.add_argument("--scale", type=int, default=128, help="synthetic-profile code-size divisor")
    p.add_argument("--seed", type=int, default=None,
                   help="oracle randomization seed (default: $REPRO_FUZZ_SEED, else 0)")
    p.add_argument("--oracle-trials", type=int, default=2,
                   help="differential-oracle trials per region")
    p.add_argument("--max-oracle-regions", type=int, default=0,
                   help="cap oracle-checked regions (0 = all; skips are reported)")
    p.add_argument("--report", metavar="FILE", default=None,
                   help="write the full verifier report as JSON")
    p.add_argument("--sweep-check", action="store_true",
                   help="also run the chaos sweeps and fail on any "
                        "admission-escape in a verified region")
    p.add_argument("--no-resume", action="store_true",
                   help="ignore any journalled verdicts from an interrupted "
                        "run of the same release (requires --rewrite-cache "
                        "to matter; a fresh run re-verifies every region)")
    p.add_argument("--telemetry-out", metavar="DIR", default=None,
                   help="write trace.json + metrics.json into DIR")
    _add_perf_flags(p)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("chaos", help="adversarial fault-injection sweep + scenarios")
    p.add_argument("workload", help="kernel workload or synthetic-profile name")
    p.add_argument("--target", default="rv64gc", help="base core the rewrite targets")
    p.add_argument("--scale", type=int, default=128, help="synthetic-profile code-size divisor")
    p.add_argument("--max-regions", type=int, default=0,
                   help="cap attacked regions per sweep (0 = exhaustive; skips are reported)")
    p.add_argument("--no-scenarios", action="store_true",
                   help="sweep only; skip the runtime-corruption injector scenarios")
    p.add_argument("--pipeline", action="store_true",
                   help="run the pipeline failure-injection scenarios instead "
                        "(worker kills, oracle hangs, torn cache writes, "
                        "truncated journals) and fail unless every one ends "
                        "in a completed run with a correct ledger")
    p.add_argument("--service", action="store_true",
                   help="run the batch-service chaos scenarios instead "
                        "(server SIGKILL mid-batch + resume, overload "
                        "flood + shedding, slow-loris eviction, deadline "
                        "storm, connection reset mid-stream) and fail "
                        "unless every client record resolves structurally")
    p.add_argument("--seed", type=int, default=None,
                   help="failure-injection seed (default: $REPRO_FUZZ_SEED, else 0)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print every attack result, not just the summary")
    p.add_argument("--telemetry-out", metavar="DIR", default=None,
                   help="write trace.json + metrics.json into DIR")
    _add_perf_flags(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "resilience",
        help="core-failure scenarios: kills, flakes, lost migrations, "
             "corrupt checkpoints, full extension-pool loss")
    p.add_argument("scenario",
                   help="scenario name (see repro.resilience.scenarios) or 'all'")
    p.add_argument("--seed", type=int, default=None,
                   help="failure-injection seed (default: $REPRO_FUZZ_SEED, else 0)")
    p.add_argument("--telemetry-out", metavar="DIR", default=None,
                   help="write trace.json + metrics.json into DIR")
    _add_perf_flags(p)
    p.set_defaults(fn=cmd_resilience)

    p = sub.add_parser(
        "serve",
        help="batch translation service: accept rewrite jobs over a local "
             "socket, dedup through the sharded cache, stream ledgers")
    p.add_argument("--cache", required=True, metavar="DIR",
                   help="rewrite-cache root the service shards and serves")
    p.add_argument("--socket", metavar="PATH", default=None,
                   help="listen on a unix socket at PATH")
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP bind host (localhost only by design)")
    p.add_argument("--port", type=int, default=None,
                   help="listen on TCP (0 = ephemeral; address is printed)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="machine-wide verification-worker budget shared "
                        "fairly across concurrent jobs (default: CPU count)")
    p.add_argument("--executor", choices=("serial", "thread", "process"),
                   default=None,
                   help="per-job verification executor (default: auto)")
    p.add_argument("--oracle-trials", type=int, default=None,
                   help="pin every job's oracle trials server-side "
                        "(one fleet, one policy, one cache key)")
    p.add_argument("--region-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock watchdog per region (process executor)")
    p.add_argument("--max-inflight", type=int, default=None, metavar="N",
                   help="bounded admission: at most N leader runs execute "
                        "concurrently; past N + --max-queue, new jobs are "
                        "shed with a job-overloaded fault carrying a "
                        "retry_after_ms hint (default: unbounded)")
    p.add_argument("--max-queue", type=int, default=0, metavar="N",
                   help="admitted leaders allowed to wait for a slot "
                        "before shedding starts (with --max-inflight)")
    p.add_argument("--idle-timeout", type=float, default=120.0,
                   metavar="SECONDS",
                   help="evict a connection with no outstanding jobs that "
                        "stays silent (or stalls mid-frame) this long — "
                        "the slow-loris defense (0 disables; default 120)")
    p.add_argument("--telemetry-out", metavar="DIR", default=None,
                   help="write trace.json + metrics.json into DIR at shutdown")
    _add_trace_flags(p)
    _add_cache_flags(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="fleet client: fan binaries/workloads at a running server, "
             "collect ledgers + a campaign manifest")
    p.add_argument("sources", nargs="*",
                   help="workload names, .self files, or directories of "
                        ".self files")
    p.add_argument("--socket", metavar="PATH", default=None,
                   help="server unix socket")
    p.add_argument("--address", metavar="ADDR", default=None,
                   help="server address (unix:PATH or tcp:HOST:PORT)")
    p.add_argument("--out", metavar="DIR", default=None,
                   help="write per-job ledgers and campaign.json into DIR")
    p.add_argument("--concurrency", type=int, default=4, metavar="N",
                   help="client-side in-flight job bound")
    p.add_argument("--repeat", type=int, default=1, metavar="N",
                   help="submit the batch N times (dedup smoke lever)")
    p.add_argument("--wait", type=float, default=None, metavar="SECONDS",
                   help="wait up to SECONDS for the server to answer ping")
    p.add_argument("--target", default="rv64gc")
    p.add_argument("--variant", choices=("base", "ext"), default="ext")
    p.add_argument("--scale", type=int, default=128,
                   help="synthetic-profile code-size divisor")
    p.add_argument("--seed", type=int, default=None,
                   help="oracle randomization seed sent with every job")
    p.add_argument("--oracle-trials", type=int, default=2,
                   help="differential-oracle trials per region")
    p.add_argument("--deadline-ms", type=int, default=None, metavar="MS",
                   help="end-to-end budget per job: the server kills an "
                        "expired job as a job-deadline-exceeded fault, "
                        "and the client stops retrying past it")
    p.add_argument("--stats", action="store_true",
                   help="print the server's counters snapshot")
    p.add_argument("--shutdown", action="store_true",
                   help="gracefully stop the server (after any campaign)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="stream per-job progress events to stderr")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser(
        "cache",
        help="rewrite-cache admin: per-shard stats, orphan GC, LRU eviction")
    p.add_argument("action", choices=("stats", "gc"))
    p.add_argument("--cache", required=True, metavar="DIR",
                   help="rewrite-cache root (flat or sharded)")
    p.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                   help="gc: age before a temp/journal orphan is swept "
                        "(default: 1 hour)")
    _add_cache_flags(p)
    p.set_defaults(fn=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    from repro.sim import machine

    # --no-block-cache / --no-trace-cache / --trace-threshold must reach
    # kernels created arbitrarily deep in a command (chaos scenarios,
    # resilience schedulers, the oracle, pooled verification workers), so
    # they flip the process-wide defaults for the duration of the command.
    prev_default = machine.BLOCK_CACHE_DEFAULT
    prev_trace = machine.TRACE_CACHE_DEFAULT
    prev_threshold = machine.TRACE_THRESHOLD_DEFAULT
    if getattr(args, "no_block_cache", False):
        machine.BLOCK_CACHE_DEFAULT = False
    if getattr(args, "no_trace_cache", False):
        machine.TRACE_CACHE_DEFAULT = False
    if getattr(args, "trace_threshold", None) is not None:
        machine.TRACE_THRESHOLD_DEFAULT = args.trace_threshold
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro disasm ... | head`
        return 0
    finally:
        machine.BLOCK_CACHE_DEFAULT = prev_default
        machine.TRACE_CACHE_DEFAULT = prev_trace
        machine.TRACE_THRESHOLD_DEFAULT = prev_threshold


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
