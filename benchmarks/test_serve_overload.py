"""Overload behavior: bounded admission must protect goodput.

A fleet retries; a server without admission control absorbs every
retry into an unbounded backlog and spends its slots on work nobody is
still waiting for.  This benchmark floods a 2-slot server at 4x
oversubscription twice — once with shedding (``max_inflight=2,
max_queue=2``) and once wide open — against an un-flooded baseline on
the same bounded server.  Correctness is asserted unconditionally:
zero silent drops, every shed job a structured ``job-overloaded``
fault carrying ``retry_after_ms``.  The goodput gate (admitted jobs
under flood sustain >= 80% of the un-flooded rate) only arms on boxes
with >= 4 CPUs; small runners record the numbers without judging
them.  ``BENCH_serve_overload.json`` carries the measurements.
"""

import asyncio
import os
import time

from benchmarks.helpers import emit_bench, print_table
from repro.core.pipeline import CacheLayout
from repro.resilience.failures import JOB_OVERLOADED
from repro.resilience.policy import RetryPolicy
from repro.service.client import submit_jobs
from repro.service.server import RewriteService
from repro.telemetry import MetricsRegistry

SEED = 20260806
NO_RETRY = RetryPolicy(max_attempts=1)
SLOTS = 2
OVERSUBSCRIPTION = 4
FLOOD = SLOTS * OVERSUBSCRIPTION * 2  # 16 jobs against 2 slots


def _specs(tag: str, count: int, base_seed: int):
    # Distinct seeds mean distinct release keys: every job is a full
    # rewrite+verify, so goodput measures the pipeline, not the cache.
    return [{"op": "submit", "id": f"{tag}-{i}", "workload": "dot",
             "seed": base_seed + i, "oracle_trials": 1}
            for i in range(count)]


async def _flood(tmp_path, tag: str, specs, *, concurrency: int,
                 **service_kw):
    layout = CacheLayout(tmp_path / f"cache-{tag}", shards=4)
    service = RewriteService(layout, jobs=SLOTS, **service_kw)
    address = await service.start(
        socket_path=str(tmp_path / f"{tag}.sock"))
    server_task = asyncio.ensure_future(service.serve_until_shutdown())
    try:
        t0 = time.perf_counter()
        records = await submit_jobs(address, specs,
                                    concurrency=concurrency,
                                    retry_policy=NO_RETRY)
        wall = time.perf_counter() - t0
    finally:
        service.shutdown()
        await server_task
    assert all(r is not None for r in records), f"{tag}: silent drop"
    ok = [r for r in records if r["status"] == "ok"]
    shed = [r for r in records
            if (r.get("fault") or {}).get("fault") == JOB_OVERLOADED]
    assert len(ok) + len(shed) == len(records), (
        f"{tag}: records outside ok/overloaded: "
        f"{[r for r in records if r not in ok and r not in shed]}")
    for record in shed:
        hint = record["fault"].get("retry_after_ms")
        assert isinstance(hint, int) and hint >= 1, (
            f"{tag}: shed without a usable retry_after_ms: {record}")
    latencies = [r["seconds"] for r in ok if r.get("seconds")]
    return {
        "wall": wall,
        "ok": len(ok),
        "shed": len(shed),
        "goodput": len(ok) / wall if wall > 0 else 0.0,
        "mean_latency": (sum(latencies) / len(latencies)
                         if latencies else 0.0),
        "stats": service.stats,
    }


def test_serve_overload(benchmark, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_FUZZ_SEED", str(SEED))
    cpus = os.cpu_count() or 1
    bounded = dict(max_inflight=SLOTS, max_queue=SLOTS)

    async def scenario():
        results = {}
        # Un-flooded baseline: same bounded server, offered load matched
        # to capacity, so nothing sheds and goodput is the ceiling.
        results["baseline"] = await _flood(
            tmp_path, "baseline", _specs("base", SLOTS * 2, SEED),
            concurrency=SLOTS, **bounded)
        # 4x oversubscription with shedding: excess jobs bounce with a
        # retry hint, admitted jobs keep the slots saturated.
        results["shed"] = await _flood(
            tmp_path, "shed", _specs("shed", FLOOD, SEED + 1000),
            concurrency=FLOOD, **bounded)
        # The regression control: same flood, admission wide open.
        results["open"] = await _flood(
            tmp_path, "open", _specs("open", FLOOD, SEED + 2000),
            concurrency=FLOOD)
        return results

    results = benchmark.pedantic(lambda: asyncio.run(scenario()),
                                 rounds=1, iterations=1)

    base, shed, open_ = (results[k] for k in ("baseline", "shed", "open"))
    assert base["shed"] == 0, "baseline load should never shed"
    assert shed["shed"] > 0, (
        f"{OVERSUBSCRIPTION}x oversubscription of a {SLOTS}-slot server "
        "shed nothing — admission bound is not engaging")
    assert shed["stats"].jobs_shed == shed["shed"]
    assert open_["shed"] == 0, "unbounded server has nothing to shed"
    assert open_["ok"] == FLOOD

    rows = [[tag, r["ok"], r["shed"], f"{r['wall']:.3f}s",
             f"{r['goodput']:.1f}/s", f"{r['mean_latency'] * 1e3:.0f}ms"]
            for tag, r in results.items()]
    print_table(
        f"Service overload: {FLOOD} jobs vs {SLOTS} slots "
        f"({OVERSUBSCRIPTION}x oversubscribed)",
        ["phase", "ok", "shed", "wall", "goodput", "mean latency"], rows)

    retention = (shed["goodput"] / base["goodput"]
                 if base["goodput"] else 0.0)
    registry = MetricsRegistry()
    for tag, r in results.items():
        registry.gauge("bench.serve_overload_goodput",
                       round(r["goodput"], 3), phase=tag)
        registry.gauge("bench.serve_overload_ok", r["ok"], phase=tag)
        registry.gauge("bench.serve_overload_shed", r["shed"], phase=tag)
        registry.gauge("bench.serve_overload_mean_latency_ms",
                       round(r["mean_latency"] * 1e3, 3), phase=tag)
    registry.gauge("bench.serve_overload_goodput_retention",
                   round(retention, 3))
    registry.gauge("bench.cpu_count", cpus)
    emit_bench("serve_overload", registry)

    if cpus >= 4:
        # Shedding exists to keep the slots serving admitted work even
        # while 4x the capacity hammers the socket.
        assert retention >= 0.8, (
            f"admitted goodput under flood fell to {retention:.0%} of the "
            f"un-flooded baseline ({shed['goodput']:.1f}/s vs "
            f"{base['goodput']:.1f}/s)")
