"""SMILE trampoline construction (paper §4.2, Fig. 2/4/7).

A SMILE trampoline is the pair::

    auipc gp, U      # gp <- pc + sext(U << 12)
    jalr  gp, J(gp)  # jump to gp + sext(J); gp <- return address

Normal execution lands on the ``auipc`` and reaches the target block.
Any erroneous jump into the interior must raise a deterministic fault:

* **P1** (start of the ``jalr``): gp still holds its ABI value, which
  points into the non-executable data segment, so the jump raises a
  SIGSEGV whose ``access="exec"`` address is in the data segment.  The
  fault pc is recovered from the return address jalr wrote into gp.
* **P2** (byte 2, when the binary has compressed instructions): the
  16-bit parcel there is the upper half of the ``auipc``.  We pin
  instruction bits 16-20 — i.e. bits 4-8 of the U field — to ``11111``
  so that parcel announces a reserved >=48-bit encoding: SIGILL.
* **P3** (byte 6): the parcel is the upper half of the ``jalr``.  With
  ``rs1 = gp = x3`` its low bits are already ``01`` (quadrant 1), and we
  choose J so the parcel decodes as the *reserved* ``c.addiw rd=x0``
  encoding: funct3 (J[11:9]) = ``001`` and rd (J[7:3]) = 0: SIGILL.

Those constraints restrict which addresses one trampoline can reach, so
the patcher *places* each target block at an address the constraints
allow (the achievable-residue math below) instead of bending the
trampoline to an arbitrary address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.encoding import encode
from repro.isa.fields import p16, sign_extend
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg
from repro.telemetry import current as telemetry_current

#: With the P3 constraint, sext(J) ranges over these two windows.
_J_BASES = (0x200, 0x300)  # J[9]=1 required; J[8] free
_J_LOW_SPAN = 8            # J[2:0] free

#: Reserved 16-bit parcel used to pad trampoline windows whose padding
#: bytes coincide with an original instruction boundary: quadrant 1,
#: funct3=001 (c.addiw), rd=0 -- reserved, raises SIGILL deterministically.
RESERVED_C_PARCEL = (0b001 << 13) | 0b01

#: A plain c.nop parcel for padding positions no jump can target.
C_NOP_PARCEL = (0b000 << 13) | 0b01


class SmilePlacementError(ValueError):
    """No legal (U, J) pair reaches the requested target."""


#: Registers usable as the SMILE jump register: their low encoding bits
#: place the jalr's upper parcel in quadrant 1, where the reserved
#: c.addiw rd=0 pattern lives (gp = x3 is the canonical member; the
#: Fig. 5 data-pointer variant may use any other member, e.g. a0/a1).
SMILE_CAPABLE_REGS: frozenset[int] = frozenset(
    r for r in range(1, 32) if (r & 0b110) == 0b010
)


@dataclass(frozen=True)
class SmileTrampoline:
    """A concrete, encodable SMILE trampoline."""

    addr: int
    target: int
    u_field: int
    j_field: int
    compressed_safe: bool
    reg: int = int(Reg.GP)

    def encode(self) -> bytes:
        """The 8 trampoline bytes."""
        auipc = Instruction("auipc", rd=self.reg, imm=self.u_field)
        jalr = Instruction("jalr", rd=self.reg, rs1=self.reg, imm=sign_extend(self.j_field, 12))
        return encode(auipc) + encode(jalr)

    @property
    def p1(self) -> int:
        """Address of the jalr (partial-execution entry)."""
        return self.addr + 4

    @property
    def return_address(self) -> int:
        """Value jalr leaves in gp (pc + 4 of the jalr)."""
        return self.addr + 8


def achievable_targets(tramp_addr: int, *, compressed: bool) -> tuple[int, ...]:
    """Residues mod 4096 a SMILE trampoline at *tramp_addr* can reach.

    Without the compressed extension there are no interior parcels to
    pin and every residue is reachable (returns empty tuple meaning
    "unconstrained").  With it, gp after ``auipc`` is congruent to
    ``tramp_addr`` mod 4096 and J is confined to the two windows above.
    """
    if not compressed:
        return ()
    residues = []
    for base in _J_BASES:
        for low in range(_J_LOW_SPAN):
            residues.append((tramp_addr + base + low) % 4096)
    return tuple(residues)


def _record_trampoline(tramp: "SmileTrampoline") -> None:
    """Count a successfully encoded SMILE trampoline in the telemetry."""
    telemetry = telemetry_current()
    if telemetry.enabled:
        telemetry.metrics.inc(
            "smile.trampolines",
            variant="compressed" if tramp.compressed_safe else "unconstrained",
            reg=f"x{tramp.reg}",
        )


def build_smile(tramp_addr: int, target: int, *, compressed: bool,
                reg: int = int(Reg.GP)) -> SmileTrampoline:
    """Construct the SMILE trampoline at *tramp_addr* reaching *target*.

    *reg* is the jump register — ``gp`` for the main design, or a
    data-pointer register for the Fig. 5 variant; it must belong to
    :data:`SMILE_CAPABLE_REGS` so the P3 parcel stays reserved.

    Raises :class:`SmilePlacementError` if the compressed-mode bit
    constraints cannot reach *target*; the patcher avoids this by
    choosing target-block addresses with :func:`achievable_targets`.
    """
    if reg not in SMILE_CAPABLE_REGS:
        raise SmilePlacementError(f"register x{reg} cannot anchor a SMILE trampoline")
    offset = target - tramp_addr
    if not compressed:
        # Unconstrained: split offset into auipc hi20 + jalr lo12.
        lo = sign_extend(offset & 0xFFF, 12)
        hi = ((offset - lo) >> 12) & 0xFFFFF
        tramp = SmileTrampoline(tramp_addr, target, hi, lo & 0xFFF,
                                compressed_safe=False, reg=reg)
        _verify(tramp, compressed=False)
        _record_trampoline(tramp)
        return tramp
    for base in _J_BASES:
        for low in range(_J_LOW_SPAN):
            j = base + low
            rest = offset - j  # must equal sext(U << 12)
            if rest % 4096:
                continue
            u = (rest >> 12) & 0xFFFFF
            if (u >> 4) & 0x1F != 0x1F:
                continue  # P2 pin: U bits 4-8 must read 11111
            if sign_extend(u << 12, 32) != rest:
                continue  # out of auipc range
            tramp = SmileTrampoline(tramp_addr, target, u, j,
                                    compressed_safe=True, reg=reg)
            _verify(tramp, compressed=True)
            _record_trampoline(tramp)
            return tramp
    raise SmilePlacementError(
        f"no SMILE encoding from {tramp_addr:#x} to {target:#x} under compressed constraints"
    )


#: All within-period reachable offsets, sorted: ``(0x1F0|low4)<<12 + J``
#: with J restricted to even values (parcel alignment).
_PERIOD = 1 << 21
_PERIOD_OFFSETS: tuple[int, ...] = tuple(sorted(
    ((0x1F0 | low4) << 12) + j
    for low4 in range(16)
    for base in _J_BASES
    for j in range(base, base + _J_LOW_SPAN, 2)
))


def next_achievable(tramp_addr: int, cursor: int) -> int:
    """Smallest compressed-safe SMILE target >= *cursor* from *tramp_addr*.

    Reachable offsets form the lattice ``hi<<21 | (0x1F0|low4)<<12 | J``
    (the P2 pin fixes offset bits 16-20 to 11111; J is confined by the
    P3 pin; low4/hi are the free auipc immediate bits).  Only even J
    values are considered so targets stay parcel-aligned.
    """
    from bisect import bisect_left

    d = max(0, cursor - tramp_addr)
    hi, rem = divmod(d, _PERIOD)
    idx = bisect_left(_PERIOD_OFFSETS, rem)
    if idx < len(_PERIOD_OFFSETS):
        candidate = tramp_addr + hi * _PERIOD + _PERIOD_OFFSETS[idx]
    else:
        candidate = tramp_addr + (hi + 1) * _PERIOD + _PERIOD_OFFSETS[0]
    if candidate - tramp_addr >= (1 << 31):
        raise SmilePlacementError(f"no reachable SMILE target from {tramp_addr:#x}")
    return candidate


class SmileTextAllocator:
    """First-fit allocator for ``.chimera.text`` target blocks.

    The compressed-mode SMILE constraints make each trampoline's
    reachable-address set sparse (~32 starts per 2 MB), so a monotonic
    cursor would waste tens of KB per block.  Because trampolines sit at
    diverse addresses, their lattices interleave: a free-list first-fit
    keeps the section dense.  Unconstrained placements (trap-fallback
    blocks, non-compressed binaries) fill gaps greedily.
    """

    def __init__(self, base: int, *, compressed: bool):
        self.base = base
        self.compressed = compressed
        self.cursor = base
        #: [start, end) gaps left behind by constrained placements.
        self.free: list[tuple[int, int]] = []

    def place(self, tramp_addr: int, size: int) -> int:
        """Reserve *size* bytes reachable from a SMILE at *tramp_addr*."""
        if not self.compressed:
            return self._place_anywhere(size)
        best: Optional[tuple[int, int]] = None  # (addr, gap index)
        for idx, (gs, ge) in enumerate(self.free):
            t = next_achievable(tramp_addr, gs)
            if t + size <= ge and (best is None or t < best[0]):
                best = (t, idx)
        tail = next_achievable(tramp_addr, self.cursor)
        if best is not None and best[0] <= tail:
            addr, idx = best
            gs, ge = self.free.pop(idx)
            self._add_gap(gs, addr)
            self._add_gap(addr + size, ge)
            return addr
        self._add_gap(self.cursor, tail)
        self.cursor = tail + size
        return tail

    def _add_gap(self, start: int, end: int) -> None:
        # Gaps below 16 bytes can't hold a useful block; dropping them
        # bounds the free list (their bytes count as padding).
        if end - start >= 16:
            self.free.append((start, end))
        elif end > start:
            self._dropped = getattr(self, "_dropped", 0) + (end - start)

    def place_unconstrained(self, size: int) -> int:
        """Reserve *size* bytes anywhere (trap-fallback blocks)."""
        return self._place_anywhere(size)

    def _place_anywhere(self, size: int, align: int = 2) -> int:
        for idx, (gs, ge) in enumerate(self.free):
            addr = (gs + align - 1) & ~(align - 1)
            if addr + size <= ge:
                self.free.pop(idx)
                self._add_gap(gs, addr)
                self._add_gap(addr + size, ge)
                return addr
        addr = (self.cursor + align - 1) & ~(align - 1)
        if addr > self.cursor:
            self.free.append((self.cursor, addr))
        self.cursor = addr + size
        return addr

    @property
    def used_span(self) -> int:
        """Total section span including internal gaps."""
        return self.cursor - self.base

    @property
    def gap_bytes(self) -> int:
        """Bytes lost to placement constraints (still-free gaps)."""
        return sum(ge - gs for gs, ge in self.free) + getattr(self, "_dropped", 0)


def _verify(tramp: SmileTrampoline, *, compressed: bool) -> None:
    """Self-check: decode semantics and (in compressed mode) fault parcels."""
    data = tramp.encode()
    auipc = decode(data, 0, addr=tramp.addr)
    jalr = decode(data, 4, addr=tramp.addr + 4)
    gp_after = tramp.addr + sign_extend(auipc.imm << 12, 32)
    reached = gp_after + jalr.imm
    if reached != tramp.target:
        raise SmilePlacementError(
            f"SMILE at {tramp.addr:#x} reaches {reached:#x}, wanted {tramp.target:#x}"
        )
    if not compressed:
        return
    for mid in (2, 6):  # P2 / P3 parcels must not decode
        try:
            decode(data, mid)
        except IllegalEncodingError:
            continue
        raise SmilePlacementError(f"parcel at +{mid} of SMILE decodes as a legal instruction")


def vanilla_trampoline(addr: int, target: int, reg: int) -> bytes:
    """Encode ``auipc reg, hi ; jalr x0, lo(reg)`` from *addr* to *target*.

    The exit trampoline of every target block (paper Fig. 8); *reg* must
    be dead at *target*.
    """
    offset = target - addr
    lo = sign_extend(offset & 0xFFF, 12)
    hi = ((offset - lo) >> 12) & 0xFFFFF
    auipc = Instruction("auipc", rd=reg, imm=hi)
    jalr = Instruction("jalr", rd=0, rs1=reg, imm=lo)
    return encode(auipc) + encode(jalr)


def smile_offset_label(offset: int) -> str:
    """Name the attack surface *offset* bytes into a SMILE window.

    The chaos sweeper labels each enumerated entry point with the
    paper's taxonomy: ``head`` (the auipc — the one legal entry),
    ``P1`` (the jalr, partial execution through a data pointer),
    ``P2``/``P3`` (the pinned reserved mid-instruction parcels),
    ``padding`` (parcels past the 8-byte trampoline), ``misaligned``
    (odd offsets no RVC jump can target).
    """
    if offset < 0:
        raise ValueError("offset must be non-negative")
    if offset % 2:
        return "misaligned"
    return {0: "head", 2: "P2", 4: "P1", 6: "P3"}.get(offset, "padding")


def smile_window_violations(data: bytes, addr: int, *, compressed: bool,
                            reg: Optional[int] = None) -> list[str]:
    """Check the SMILE bit-pinning invariants over live window bytes.

    Returns a list of human-readable violations (empty = the 8-byte
    trampoline at *addr* upholds every invariant the runtime's recovery
    relies on).  Used by the admission gate before release and by the
    rollback journal's re-verification before re-admission.
    """
    out: list[str] = []
    if len(data) < 8:
        return [f"window is {len(data)} bytes, need 8"]
    try:
        auipc = decode(data, 0, addr=addr)
    except IllegalEncodingError as exc:
        return [f"head does not decode: {exc}"]
    try:
        jalr = decode(data, 4, addr=addr + 4)
    except IllegalEncodingError as exc:
        return [f"jalr slot does not decode: {exc}"]
    if auipc.mnemonic != "auipc":
        out.append(f"head is {auipc.mnemonic}, not auipc")
    if jalr.mnemonic != "jalr":
        out.append(f"+4 is {jalr.mnemonic}, not jalr")
    if out:
        return out
    if not (auipc.rd == jalr.rd == jalr.rs1):
        out.append(
            f"jump register mismatch: auipc rd=x{auipc.rd}, "
            f"jalr rd=x{jalr.rd} rs1=x{jalr.rs1}")
    if auipc.rd not in SMILE_CAPABLE_REGS:
        out.append(f"x{auipc.rd} cannot anchor a SMILE trampoline")
    if reg is not None and auipc.rd != reg:
        out.append(f"jump register is x{auipc.rd}, recorded x{reg}")
    if compressed:
        u = auipc.imm & 0xFFFFF
        if (u >> 4) & 0x1F != 0x1F:
            out.append(
                f"P2 pin broken: auipc U bits 4-8 are "
                f"{(u >> 4) & 0x1F:#07b}, must be 0b11111")
        for mid, label in ((2, "P2"), (6, "P3")):
            try:
                parcel = decode(data, mid)
            except IllegalEncodingError:
                continue
            out.append(
                f"{label} parcel decodes as legal {parcel.mnemonic}: "
                "a mid-trampoline jump would not fault")
    return out


def smile_window_target(data: bytes, addr: int) -> Optional[int]:
    """Computed jump target of the SMILE trampoline bytes at *addr*.

    None when the window no longer decodes as an auipc+jalr pair.
    """
    try:
        auipc = decode(data, 0, addr=addr)
        jalr = decode(data, 4, addr=addr + 4)
    except IllegalEncodingError:
        return None
    if auipc.mnemonic != "auipc" or jalr.mnemonic != "jalr":
        return None
    return addr + sign_extend(auipc.imm << 12, 32) + jalr.imm


def padding_parcels(n_bytes: int, *, boundary_in_padding: bool) -> bytes:
    """Padding for trampoline windows longer than 8 bytes.

    Uses c.nop when no original boundary falls inside the padding (the
    paper's choice, Fig. 4) and the reserved parcel when one does, so a
    jump to that boundary still faults deterministically.
    """
    if n_bytes % 2:
        raise ValueError("padding must be parcel-aligned")
    parcel = RESERVED_C_PARCEL if boundary_in_padding else C_NOP_PARCEL
    return p16(parcel) * (n_bytes // 2)
