"""Encoders: ``Instruction`` IR -> machine bytes (little-endian).

Encodings follow the RISC-V unprivileged specification for every
implemented instruction, including the RVC parcel layouts.  This matters
here more than in a typical simulator: the SMILE trampoline's
correctness argument (paper §4.2, Fig. 7) is a statement about *bit
patterns* — which 16-bit parcels of an ``auipc``/``jalr`` pair decode to
reserved encodings — so the encoder must produce the real layouts for
the reproduction to exercise the mechanism rather than assume it.
"""

from __future__ import annotations

from repro.isa import opcodes as op
from repro.isa.fields import (
    bit,
    bits,
    check_aligned,
    check_signed,
    check_unsigned,
    p16,
    p32,
)
from repro.isa.instructions import Instruction
from repro.isa.registers import rvc_encode_reg


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded (bad operand/range)."""


# ---------------------------------------------------------------------------
# 32-bit format packers
# ---------------------------------------------------------------------------

def r_type(opcode: int, funct3: int, funct7: int, rd: int, rs1: int, rs2: int) -> int:
    """Pack an R-type instruction word."""
    return (
        (funct7 << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | (rd << 7) | opcode
    )


def i_type(opcode: int, funct3: int, rd: int, rs1: int, imm: int) -> int:
    """Pack an I-type instruction word (12-bit signed immediate)."""
    check_signed(imm, 12, "I-type imm")
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def s_type(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """Pack an S-type instruction word (stores)."""
    check_signed(imm, 12, "S-type imm")
    imm &= 0xFFF
    return (
        (bits(imm, 11, 5) << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | (bits(imm, 4, 0) << 7) | opcode
    )


def b_type(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """Pack a B-type instruction word (13-bit signed, 2-byte aligned)."""
    check_signed(imm, 13, "B-type imm")
    check_aligned(imm, 2, "B-type imm")
    imm &= 0x1FFF
    return (
        (bit(imm, 12) << 31) | (bits(imm, 10, 5) << 25) | (rs2 << 20)
        | (rs1 << 15) | (funct3 << 12) | (bits(imm, 4, 1) << 8)
        | (bit(imm, 11) << 7) | opcode
    )


def u_type(opcode: int, rd: int, imm20: int) -> int:
    """Pack a U-type instruction word; *imm20* is the raw bits-31:12 value."""
    check_unsigned(imm20 & 0xFFFFF, 20, "U-type imm20")
    return ((imm20 & 0xFFFFF) << 12) | (rd << 7) | opcode


def j_type(opcode: int, rd: int, imm: int) -> int:
    """Pack a J-type instruction word (21-bit signed, 2-byte aligned)."""
    check_signed(imm, 21, "J-type imm")
    check_aligned(imm, 2, "J-type imm")
    imm &= 0x1FFFFF
    return (
        (bit(imm, 20) << 31) | (bits(imm, 10, 1) << 21) | (bit(imm, 11) << 20)
        | (bits(imm, 19, 12) << 12) | (rd << 7) | opcode
    )


# ---------------------------------------------------------------------------
# Instruction tables
# ---------------------------------------------------------------------------

#: (funct3, funct7) for OP-opcode R-type arithmetic.
_OP_TABLE: dict[str, tuple[int, int]] = {
    "add": (op.F3_ADD_SUB, op.F7_BASE),
    "sub": (op.F3_ADD_SUB, op.F7_SUB_SRA),
    "sll": (op.F3_SLL, op.F7_BASE),
    "slt": (op.F3_SLT, op.F7_BASE),
    "sltu": (op.F3_SLTU, op.F7_BASE),
    "xor": (op.F3_XOR, op.F7_BASE),
    "srl": (op.F3_SRL_SRA, op.F7_BASE),
    "sra": (op.F3_SRL_SRA, op.F7_SUB_SRA),
    "or": (op.F3_OR, op.F7_BASE),
    "and": (op.F3_AND, op.F7_BASE),
    "mul": (0b000, op.F7_MULDIV),
    "mulh": (0b001, op.F7_MULDIV),
    "mulhsu": (0b010, op.F7_MULDIV),
    "mulhu": (0b011, op.F7_MULDIV),
    "div": (0b100, op.F7_MULDIV),
    "divu": (0b101, op.F7_MULDIV),
    "rem": (0b110, op.F7_MULDIV),
    "remu": (0b111, op.F7_MULDIV),
    "sh1add": (0b010, op.F7_ZBA),
    "sh2add": (0b100, op.F7_ZBA),
    "sh3add": (0b110, op.F7_ZBA),
}

#: (funct3, funct7) for OP_32-opcode R-type word arithmetic.
_OP32_TABLE: dict[str, tuple[int, int]] = {
    "addw": (op.F3_ADD_SUB, op.F7_BASE),
    "subw": (op.F3_ADD_SUB, op.F7_SUB_SRA),
    "sllw": (op.F3_SLL, op.F7_BASE),
    "srlw": (op.F3_SRL_SRA, op.F7_BASE),
    "sraw": (op.F3_SRL_SRA, op.F7_SUB_SRA),
    "mulw": (0b000, op.F7_MULDIV),
    "divw": (0b100, op.F7_MULDIV),
    "divuw": (0b101, op.F7_MULDIV),
    "remw": (0b110, op.F7_MULDIV),
    "remuw": (0b111, op.F7_MULDIV),
}

#: funct3 for OP_IMM-opcode I-type arithmetic.
_OPIMM_TABLE: dict[str, int] = {
    "addi": op.F3_ADD_SUB,
    "slti": op.F3_SLT,
    "sltiu": op.F3_SLTU,
    "xori": op.F3_XOR,
    "ori": op.F3_OR,
    "andi": op.F3_AND,
}

#: funct3 for LOAD-opcode instructions.
_LOAD_TABLE: dict[str, int] = {
    "lb": op.F3_B, "lh": op.F3_H, "lw": op.F3_W, "ld": op.F3_D,
    "lbu": op.F3_BU, "lhu": op.F3_HU, "lwu": op.F3_WU,
}

#: funct3 for STORE-opcode instructions.
_STORE_TABLE: dict[str, int] = {
    "sb": op.F3_B, "sh": op.F3_H, "sw": op.F3_W, "sd": op.F3_D,
}

#: funct3 for BRANCH-opcode instructions.
_BRANCH_TABLE: dict[str, int] = {
    "beq": op.F3_BEQ, "bne": op.F3_BNE, "blt": op.F3_BLT,
    "bge": op.F3_BGE, "bltu": op.F3_BLTU, "bgeu": op.F3_BGEU,
}

#: funct6 and category for implemented OP-V arithmetic.
_VARITH_TABLE: dict[str, tuple[int, int]] = {
    "vadd.vv": (op.V_ADD, op.OPIVV),
    "vadd.vx": (op.V_ADD, op.OPIVX),
    "vadd.vi": (op.V_ADD, op.OPIVI),
    "vsub.vv": (op.V_SUB, op.OPIVV),
    "vsub.vx": (op.V_SUB, op.OPIVX),
    "vmin.vv": (op.V_MIN, op.OPIVV),
    "vminu.vv": (op.V_MINU, op.OPIVV),
    "vmax.vv": (op.V_MAX, op.OPIVV),
    "vmaxu.vv": (op.V_MAXU, op.OPIVV),
    "vand.vv": (op.V_AND, op.OPIVV),
    "vor.vv": (op.V_OR, op.OPIVV),
    "vxor.vv": (op.V_XOR, op.OPIVV),
    "vsll.vv": (op.V_SLL, op.OPIVV),
    "vsll.vx": (op.V_SLL, op.OPIVX),
    "vsrl.vv": (op.V_SRL, op.OPIVV),
    "vsrl.vx": (op.V_SRL, op.OPIVX),
    "vsra.vv": (op.V_SRA, op.OPIVV),
    "vsra.vx": (op.V_SRA, op.OPIVX),
    "vmul.vv": (op.V_MUL, op.OPMVV),
    "vmul.vx": (op.V_MUL, op.OPMVX),
    "vmacc.vv": (op.V_MACC, op.OPMVV),
    "vmv.v.x": (op.V_MV, op.OPIVX),
    "vmv.v.i": (op.V_MV, op.OPIVI),
    "vmv.x.s": (op.V_WXUNARY, op.OPMVV),
    "vredsum.vs": (op.V_ADD, op.OPMVV),
}

_VLOAD_WIDTH: dict[str, int] = {
    "vle32.v": op.VWIDTH_32, "vle64.v": op.VWIDTH_64,
}
_VSTORE_WIDTH: dict[str, int] = {
    "vse32.v": op.VWIDTH_32, "vse64.v": op.VWIDTH_64,
}


def encode_vtype(sew: int, lmul: int = 1) -> int:
    """Encode a vtype immediate for ``vsetvli`` (ta/ma semantics fixed)."""
    if sew not in op.VSEW_CODES:
        raise EncodingError(f"unsupported SEW {sew}")
    if lmul != 1:
        raise EncodingError("only LMUL=1 is implemented")
    return op.VSEW_CODES[sew] << 3


def decode_vtype(vtype: int) -> int:
    """Return the SEW encoded in a vtype immediate."""
    code = bits(vtype, 5, 3)
    if code not in op.VSEW_FROM_CODE:
        raise EncodingError(f"unsupported vtype {vtype:#x}")
    return op.VSEW_FROM_CODE[code]


# ---------------------------------------------------------------------------
# 16-bit (RVC) packers
# ---------------------------------------------------------------------------

def _ci(funct3: int, quadrant: int, rd: int, imm6: int) -> int:
    """Pack a CI-format parcel (imm split as imm[5] | rd | imm[4:0])."""
    return (
        (funct3 << 13) | (bit(imm6, 5) << 12) | (rd << 7)
        | (bits(imm6, 4, 0) << 2) | quadrant
    )


def _encode_c(instr: Instruction) -> int:
    """Encode one compressed instruction to its 16-bit parcel."""
    m = instr.mnemonic
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    if m == "c.nop":
        return _ci(0b000, op.C_Q1, 0, 0)
    if m == "c.addi":
        if rd == 0:
            raise EncodingError("c.addi needs rd != x0 (use c.nop)")
        check_signed(imm, 6, "c.addi imm")
        return _ci(0b000, op.C_Q1, rd, imm & 0x3F)
    if m == "c.addiw":
        if rd == 0:
            raise EncodingError("c.addiw with rd=x0 is reserved")
        check_signed(imm, 6, "c.addiw imm")
        return _ci(0b001, op.C_Q1, rd, imm & 0x3F)
    if m == "c.li":
        if rd == 0:
            raise EncodingError("c.li needs rd != x0")
        check_signed(imm, 6, "c.li imm")
        return _ci(0b010, op.C_Q1, rd, imm & 0x3F)
    if m == "c.lui":
        if rd in (0, 2):
            raise EncodingError("c.lui needs rd != x0, x2")
        if imm == 0 or not (-32 <= imm < 32):
            raise EncodingError("c.lui imm out of range or zero")
        return _ci(0b011, op.C_Q1, rd, imm & 0x3F)
    if m == "c.slli":
        if rd == 0 or imm == 0:
            raise EncodingError("c.slli needs rd != x0 and shamt != 0")
        check_unsigned(imm, 6, "c.slli shamt")
        return _ci(0b000, op.C_Q2, rd, imm)
    if m in ("c.srli", "c.srai", "c.andi"):
        funct2 = {"c.srli": 0b00, "c.srai": 0b01, "c.andi": 0b10}[m]
        if m == "c.andi":
            check_signed(imm, 6, "c.andi imm")
        else:
            if imm == 0:
                raise EncodingError(f"{m} shamt must be nonzero")
            check_unsigned(imm, 6, f"{m} shamt")
        rdc = rvc_encode_reg(rd)
        imm &= 0x3F
        return (
            (0b100 << 13) | (bit(imm, 5) << 12) | (funct2 << 10) | (rdc << 7)
            | (bits(imm, 4, 0) << 2) | op.C_Q1
        )
    if m in ("c.sub", "c.xor", "c.or", "c.and", "c.subw", "c.addw"):
        word = m in ("c.subw", "c.addw")
        funct2 = {
            "c.sub": 0b00, "c.xor": 0b01, "c.or": 0b10, "c.and": 0b11,
            "c.subw": 0b00, "c.addw": 0b01,
        }[m]
        rdc = rvc_encode_reg(rd)
        rs2c = rvc_encode_reg(rs2)
        return (
            (0b100 << 13) | ((1 if word else 0) << 12) | (0b11 << 10)
            | (rdc << 7) | (funct2 << 5) | (rs2c << 2) | op.C_Q1
        )
    if m == "c.mv":
        if rd == 0 or rs2 == 0:
            raise EncodingError("c.mv needs rd, rs2 != x0")
        return (0b100 << 13) | (0 << 12) | (rd << 7) | (rs2 << 2) | op.C_Q2
    if m == "c.add":
        if rd == 0 or rs2 == 0:
            raise EncodingError("c.add needs rd, rs2 != x0")
        return (0b100 << 13) | (1 << 12) | (rd << 7) | (rs2 << 2) | op.C_Q2
    if m == "c.jr":
        if rs1 == 0:
            raise EncodingError("c.jr with rs1=x0 is reserved")
        return (0b100 << 13) | (0 << 12) | (rs1 << 7) | op.C_Q2
    if m == "c.jalr":
        if rs1 == 0:
            raise EncodingError("c.jalr needs rs1 != x0")
        return (0b100 << 13) | (1 << 12) | (rs1 << 7) | op.C_Q2
    if m == "c.ebreak":
        return (0b100 << 13) | (1 << 12) | op.C_Q2
    if m == "c.j":
        check_signed(imm, 12, "c.j imm")
        check_aligned(imm, 2, "c.j imm")
        i = imm & 0xFFF
        return (
            (0b101 << 13) | (bit(i, 11) << 12) | (bit(i, 4) << 11)
            | (bits(i, 9, 8) << 9) | (bit(i, 10) << 8) | (bit(i, 6) << 7)
            | (bit(i, 7) << 6) | (bits(i, 3, 1) << 3) | (bit(i, 5) << 2)
            | op.C_Q1
        )
    if m in ("c.beqz", "c.bnez"):
        funct3 = 0b110 if m == "c.beqz" else 0b111
        check_signed(imm, 9, f"{m} imm")
        check_aligned(imm, 2, f"{m} imm")
        rs1c = rvc_encode_reg(rs1)
        i = imm & 0x1FF
        return (
            (funct3 << 13) | (bit(i, 8) << 12) | (bits(i, 4, 3) << 10)
            | (rs1c << 7) | (bits(i, 7, 6) << 5) | (bits(i, 2, 1) << 3)
            | (bit(i, 5) << 2) | op.C_Q1
        )
    if m in ("c.lw", "c.ld", "c.sw", "c.sd"):
        is_load = m in ("c.lw", "c.ld")
        is_word = m in ("c.lw", "c.sw")
        funct3 = {"c.lw": 0b010, "c.ld": 0b011, "c.sw": 0b110, "c.sd": 0b111}[m]
        rs1c = rvc_encode_reg(rs1)
        other = rvc_encode_reg(rd if is_load else rs2)
        if is_word:
            check_unsigned(imm, 7, f"{m} offset")
            check_aligned(imm, 4, f"{m} offset")
            mid = (bit(imm, 2) << 6) | (bit(imm, 6) << 5)
        else:
            check_unsigned(imm, 8, f"{m} offset")
            check_aligned(imm, 8, f"{m} offset")
            mid = bits(imm, 7, 6) << 5
        return (
            (funct3 << 13) | (bits(imm, 5, 3) << 10) | (rs1c << 7)
            | mid | (other << 2) | op.C_Q0
        )
    if m in ("c.lwsp", "c.ldsp"):
        if rd == 0:
            raise EncodingError(f"{m} with rd=x0 is reserved")
        if m == "c.lwsp":
            check_unsigned(imm, 8, "c.lwsp offset")
            check_aligned(imm, 4, "c.lwsp offset")
            low = (bits(imm, 4, 2) << 4) | (bits(imm, 7, 6) << 2)
        else:
            check_unsigned(imm, 9, "c.ldsp offset")
            check_aligned(imm, 8, "c.ldsp offset")
            low = (bits(imm, 4, 3) << 5) | (bits(imm, 8, 6) << 2)
        funct3 = 0b010 if m == "c.lwsp" else 0b011
        return (funct3 << 13) | (bit(imm, 5) << 12) | (rd << 7) | low | op.C_Q2
    if m in ("c.swsp", "c.sdsp"):
        if m == "c.swsp":
            check_unsigned(imm, 8, "c.swsp offset")
            check_aligned(imm, 4, "c.swsp offset")
            field = (bits(imm, 5, 2) << 9) | (bits(imm, 7, 6) << 7)
        else:
            check_unsigned(imm, 9, "c.sdsp offset")
            check_aligned(imm, 8, "c.sdsp offset")
            field = (bits(imm, 5, 3) << 10) | (bits(imm, 8, 6) << 7)
        funct3 = 0b110 if m == "c.swsp" else 0b111
        return (funct3 << 13) | field | (rs2 << 2) | op.C_Q2
    if m == "c.addi4spn":
        if imm == 0:
            raise EncodingError("c.addi4spn nzuimm=0 is reserved")
        check_unsigned(imm, 10, "c.addi4spn imm")
        check_aligned(imm, 4, "c.addi4spn imm")
        rdc = rvc_encode_reg(rd)
        return (
            (0b000 << 13) | (bits(imm, 5, 4) << 11) | (bits(imm, 9, 6) << 7)
            | (bit(imm, 2) << 6) | (bit(imm, 3) << 5) | (rdc << 2) | op.C_Q0
        )
    raise EncodingError(f"no compressed encoder for {m!r}")


# ---------------------------------------------------------------------------
# Top-level encode
# ---------------------------------------------------------------------------

def _encode32(instr: Instruction) -> int:
    """Encode one 32-bit instruction to its word."""
    m = instr.mnemonic
    rd = instr.rd if instr.rd is not None else 0
    rs1 = instr.rs1 if instr.rs1 is not None else 0
    rs2 = instr.rs2 if instr.rs2 is not None else 0
    imm = instr.imm if instr.imm is not None else 0

    if m in _OP_TABLE:
        f3, f7 = _OP_TABLE[m]
        return r_type(op.OP, f3, f7, rd, rs1, rs2)
    if m in _OP32_TABLE:
        f3, f7 = _OP32_TABLE[m]
        return r_type(op.OP_32, f3, f7, rd, rs1, rs2)
    if m in _OPIMM_TABLE:
        return i_type(op.OP_IMM, _OPIMM_TABLE[m], rd, rs1, imm)
    if m == "slli":
        check_unsigned(imm, 6, "slli shamt")
        return i_type(op.OP_IMM, op.F3_SLL, rd, rs1, imm)
    if m == "srli":
        check_unsigned(imm, 6, "srli shamt")
        return i_type(op.OP_IMM, op.F3_SRL_SRA, rd, rs1, imm)
    if m == "srai":
        check_unsigned(imm, 6, "srai shamt")
        return i_type(op.OP_IMM, op.F3_SRL_SRA, rd, rs1, imm | (op.F7_SUB_SRA << 5))
    if m == "addiw":
        return i_type(op.OP_IMM_32, op.F3_ADD_SUB, rd, rs1, imm)
    if m == "slliw":
        check_unsigned(imm, 5, "slliw shamt")
        return i_type(op.OP_IMM_32, op.F3_SLL, rd, rs1, imm)
    if m == "srliw":
        check_unsigned(imm, 5, "srliw shamt")
        return i_type(op.OP_IMM_32, op.F3_SRL_SRA, rd, rs1, imm)
    if m == "sraiw":
        check_unsigned(imm, 5, "sraiw shamt")
        return i_type(op.OP_IMM_32, op.F3_SRL_SRA, rd, rs1, imm | (op.F7_SUB_SRA << 5))
    if m in _LOAD_TABLE:
        return i_type(op.LOAD, _LOAD_TABLE[m], rd, rs1, imm)
    if m in _STORE_TABLE:
        return s_type(op.STORE, _STORE_TABLE[m], rs1, rs2, imm)
    if m in _BRANCH_TABLE:
        return b_type(op.BRANCH, _BRANCH_TABLE[m], rs1, rs2, imm)
    if m == "lui":
        # imm is the raw 20-bit field value (the value placed in bits 31:12).
        return u_type(op.LUI, rd, imm & 0xFFFFF)
    if m == "auipc":
        return u_type(op.AUIPC, rd, imm & 0xFFFFF)
    if m == "jal":
        return j_type(op.JAL, rd, imm)
    if m == "jalr":
        return i_type(op.JALR, 0b000, rd, rs1, imm)
    if m == "ecall":
        return i_type(op.SYSTEM, 0b000, 0, 0, 0)
    if m == "ebreak":
        return i_type(op.SYSTEM, 0b000, 0, 0, 1)
    if m == "fence":
        return i_type(op.MISC_MEM, 0b000, 0, 0, 0)
    # -- vector --------------------------------------------------------
    if m == "vsetvli":
        check_unsigned(imm, 11, "vsetvli vtype")
        return (imm << 20) | (rs1 << 15) | (op.OPCFG << 12) | (rd << 7) | op.OP_V
    if m in _VARITH_TABLE:
        funct6, cat = _VARITH_TABLE[m]
        # vmv.x.s writes an INTEGER register through the vd field slot.
        vd = instr.rd if m == "vmv.x.s" else (instr.vd if instr.vd is not None else 0)
        vs2 = instr.vs2 if instr.vs2 is not None else 0
        if cat in (op.OPIVV, op.OPMVV):
            mid = instr.vs1 if instr.vs1 is not None else 0
        elif cat == op.OPIVI:
            check_signed(imm, 5, f"{m} imm")
            mid = imm & 0x1F
        else:  # OPIVX / OPMVX
            mid = rs1
        return (
            (funct6 << 26) | ((instr.vm & 1) << 25) | (vs2 << 20)
            | (mid << 15) | (cat << 12) | (vd << 7) | op.OP_V
        )
    if m in _VLOAD_WIDTH:
        vd = instr.vd if instr.vd is not None else 0
        return (
            (0 << 29) | (0 << 26) | ((instr.vm & 1) << 25) | (0 << 20)
            | (rs1 << 15) | (_VLOAD_WIDTH[m] << 12) | (vd << 7) | op.LOAD_FP
        )
    if m in _VSTORE_WIDTH:
        vs3 = instr.vd if instr.vd is not None else 0
        return (
            (0 << 29) | (0 << 26) | ((instr.vm & 1) << 25) | (0 << 20)
            | (rs1 << 15) | (_VSTORE_WIDTH[m] << 12) | (vs3 << 7) | op.STORE_FP
        )
    raise EncodingError(f"no encoder for mnemonic {instr.mnemonic!r}")


def encode(instr: Instruction) -> bytes:
    """Encode *instr* to its little-endian machine bytes (2 or 4)."""
    if instr.mnemonic.startswith("c."):
        parcel = _encode_c(instr)
        if parcel & 0b11 == 0b11:
            raise EncodingError(f"compressed encoding of {instr.mnemonic} has 32-bit low bits")
        return p16(parcel)
    word = _encode32(instr)
    if word & 0b11 != 0b11:
        raise EncodingError(f"32-bit encoding of {instr.mnemonic} lacks 0b11 low bits")
    return p32(word)


def encode_word(instr: Instruction) -> int:
    """Encode *instr* and return the raw integer encoding."""
    data = encode(instr)
    return int.from_bytes(data, "little")


def encode_stream(instrs: list[Instruction]) -> bytes:
    """Encode a list of instructions to a contiguous byte string."""
    return b"".join(encode(i) for i in instrs)
