"""DES-vs-measured validation + the Multiverse overhead claim (§2.2).

Two cross-checks that are not paper figures but anchor the methodology:

1. the discrete-event scheduler used by Fig. 11/12/14 must agree with
   full measured execution of real binaries under the same policy;
2. Multiverse's always-lookup regeneration must land "above 30%"
   overhead on indirect-heavy code (the paper's §2.2 citation), with
   Safer well below it — the gap Safer's encoding optimization created.
"""

import pytest

from benchmarks.helpers import emit_bench, print_table, scaled_arch
from repro.telemetry import MetricsRegistry
from repro.core.machine_runner import MeasuredScheduler, varied_taskset
from repro.core.scheduler import WorkStealingScheduler, mixed_taskset
from repro.harness import run_multiverse, run_native, run_safer
from repro.isa.extensions import RV64GC, RV64GCV
from repro.workloads.hetero import measure_hetero_costs
from repro.workloads.programs import IndirectDispatchWorkload


def test_des_vs_measured_execution(benchmark):
    def run():
        rows = []
        for share in (0.5, 1.0):
            measured = MeasuredScheduler(2, 2).run(varied_taskset(20, share), "chimera")
            costs = measure_hetero_costs("ext")
            des = WorkStealingScheduler(2, 2).run(
                mixed_taskset(20, share), costs.model("chimera")
            )
            rows.append([f"{share:.0%}", measured.makespan, des.makespan,
                         f"{measured.makespan / des.makespan:.2f}"])
        print_table("DES engine vs full measured execution (chimera, makespan)",
                    ["ext-share", "measured", "DES", "ratio"], rows)
        registry = MetricsRegistry()
        for share_label, measured_ms, des_ms, _ratio in rows:
            registry.gauge("bench.makespan_cycles", measured_ms,
                           engine="measured", ext_share=share_label)
            registry.gauge("bench.makespan_cycles", des_ms,
                           engine="des", ext_share=share_label)
        emit_bench("scheduler_validation", registry)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        assert 0.5 < float(row[3]) < 2.0


def test_multiverse_overhead(benchmark):
    def run():
        rows = []
        for iterations in (150, 400):
            binary = IndirectDispatchWorkload(iterations=iterations).build("base")
            native = run_native(binary, RV64GC)
            mv = run_multiverse(binary, RV64GC)
            sf = run_safer(binary, RV64GC)
            rows.append([
                f"dispatch x{iterations}",
                native.cycles,
                f"+{100 * (mv.cycles - native.cycles) / native.cycles:.1f}%",
                f"+{100 * (sf.cycles - native.cycles) / native.cycles:.1f}%",
            ])
        print_table("Multiverse vs Safer on indirect-heavy code",
                    ["workload", "native", "multiverse", "safer"], rows)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        mv = float(row[2].strip("+%"))
        sf = float(row[3].strip("+%"))
        assert mv > 30.0      # paper: "above 30% performance overhead"
        assert sf < mv / 1.5  # Safer's whole contribution
