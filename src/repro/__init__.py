"""Chimera reproduction: transparent ISAX heterogeneous computing via
binary rewriting (EuroSys'26), as a pure-Python library.

Quick tour::

    from repro import ChimeraRewriter, ChimeraRuntime, RV64GC, RV64GCV
    from repro.elf.loader import make_process
    from repro.sim.machine import Core, Kernel

    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(binary, RV64GC)       # downgrade for base cores
    kernel = Kernel()
    ChimeraRuntime(result.binary, rewriter=rewriter, original=binary).install(kernel)
    outcome = kernel.run(make_process(result.binary), Core(0, RV64GC))

See ``examples/quickstart.py`` for the end-to-end version.
"""

from repro.core.rewriter import ChimeraRewriter, RewriteResult
from repro.core.runtime import ChimeraRuntime
from repro.core.mmview import MMViewProcess
from repro.core.scheduler import SystemModel, Task, WorkStealingScheduler
from repro.elf.binary import Binary, Perm, Section
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import load_binary, make_process
from repro.isa.extensions import Extension, IsaProfile, RV64G, RV64GC, RV64GCV
from repro.sim.cost import ArchParams, CostModel
from repro.sim.machine import Core, Kernel, Machine, Process, RunResult

__version__ = "1.0.0"

__all__ = [
    "ChimeraRewriter",
    "RewriteResult",
    "ChimeraRuntime",
    "MMViewProcess",
    "WorkStealingScheduler",
    "SystemModel",
    "Task",
    "Binary",
    "Section",
    "Perm",
    "ProgramBuilder",
    "load_binary",
    "make_process",
    "Extension",
    "IsaProfile",
    "RV64G",
    "RV64GC",
    "RV64GCV",
    "ArchParams",
    "CostModel",
    "Core",
    "Kernel",
    "Machine",
    "Process",
    "RunResult",
]
