"""Chaos harness: wire sweeps and injector scenarios into one verdict.

Two halves (see DESIGN.md "Robustness & chaos testing"):

* :func:`run_workload_sweeps` rewrites a workload under SMILE and under
  all-trap patching (``use_smile=False``) and lets the
  :class:`~repro.chaos.sweeper.TrampolineAttackSweeper` force a jump to
  every patched byte of each;
* :func:`run_injector_scenarios` runs purpose-built workloads under the
  concrete :mod:`~repro.chaos.injector` corruptions and asserts each
  ends the way graceful degradation demands — a structured
  :class:`~repro.sim.faults.UnrecoverableFault` with diagnostics for
  the fatal corruptions, a correct finish for the survivable ones.

``python -m repro chaos <workload>`` drives both.
"""

from __future__ import annotations

from typing import Optional

from repro.chaos.injector import (
    ClobberGpInjector,
    CorruptFaultTableInjector,
    CorruptSignalFrameInjector,
    DropFaultTableInjector,
    MigrationCorruptionInjector,
    PcAssertionInjector,
    SignalMidTrampolineInjector,
    StaleDecodeCacheInjector,
    TrampolineBitrotInjector,
)
from repro.chaos.outcomes import ChaosReport, ScenarioResult, SweepReport
from repro.chaos.sweeper import TrampolineAttackSweeper
from repro.core.mmview import MigrationProbeManager, MMViewProcess
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.binary import Binary
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV, IsaProfile
from repro.sim.faults import EcallTrap, ExitRequest, SimFault, UnrecoverableFault
from repro.sim.machine import SIGSEGV, Core, Kernel
from repro.sim.syscalls import handle_syscall

#: Patching modes a sweep covers: the SMILE design and the all-trap
#: fallback configuration (the paper's residue path, made total).
SWEEP_MODES = ("smile", "trap-fallback")


# -- sweeps ----------------------------------------------------------------


def sweep_binary(
    original: Binary,
    *,
    mode: str = "smile",
    target: IsaProfile = RV64GC,
    max_regions: int = 0,
    injector=None,
    verify: bool = True,
    jobs: int = 1,
) -> SweepReport:
    """Rewrite *original* for *target* under *mode* and sweep it.

    With *verify* (the default) the static admission gate runs first and
    its ledger is cross-checked against the sweep: a hard failure inside
    an admitted region escalates to ``admission-escape``.
    """
    rewriter = ChimeraRewriter(use_smile=(mode != "trap-fallback"))
    result = rewriter.rewrite(original, target)
    admitted = None
    if verify:
        # Imported lazily: the verify package pulls in the oracle stack,
        # which this module must not depend on at import time.
        from repro.verify.admission import AdmissionGate

        admitted = AdmissionGate(
            original, result.binary, oracle_trials=1, jobs=jobs,
            liveness=result.liveness,
        ).verify().admitted_starts
    sweeper = TrampolineAttackSweeper(
        original, result.binary, rewriter=rewriter, max_regions=max_regions,
        injector=injector, admitted=admitted,
    )
    return sweeper.sweep(mode=mode)


def run_workload_sweeps(
    original: Binary,
    *,
    target: IsaProfile = RV64GC,
    max_regions: int = 0,
    modes: tuple[str, ...] = SWEEP_MODES,
    injector=None,
    jobs: int = 1,
) -> list[SweepReport]:
    return [
        sweep_binary(original, mode=mode, target=target, max_regions=max_regions,
                     injector=injector, jobs=jobs)
        for mode in modes
    ]


# -- scenario workloads ----------------------------------------------------


def build_erroneous_workload(*, with_signal_handler: bool = False) -> Binary:
    """Vector episode + an indirect jump straight at a SMILE interior.

    After rewriting for a base core, ``ep_second`` is the trampoline's
    jalr slot (P1): phase 2 jumps there, raising the deterministic
    exec-SEGV every injector scenario perturbs.  With
    ``with_signal_handler`` the program registers a SIGSEGV handler that
    counts its invocations and records the gp it observed (Fig. 10).
    """
    b = ProgramBuilder("chaos-err")
    b.add_words("buf", [10, 20] + [0] * 8)
    b.add_words("out", [0, 0])
    handler_setup = ""
    handler_code = ""
    if with_signal_handler:
        b.add_words("hits", [0])
        b.add_words("gp_seen", [0])
        handler_setup = f"""
    li a0, {SIGSEGV}
    la a1, handler
    li a7, 134
    ecall
"""
        handler_code = """
handler:
    li t2, {hits}
    ld t3, 0(t2)
    addi t3, t3, 1
    sd t3, 0(t2)
    li t2, {gp_seen}
    sd gp, 0(t2)
    li a7, 139
    ecall
"""
    b.set_text(f"""
_start:
{handler_setup}
    li a0, {{buf}}
    li a1, 2
    jal episode
    la t0, ep_second
    jalr t0
    li t1, {{out}}
    sd a4, 0(t1)
    li a7, 93
    li a0, 0
    ecall
{handler_code}
episode:
    vsetvli t0, a1, e64
ep_second:
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    addi a4, a4, 1
    ret
""")
    b.mark_function("episode")
    return b.build()


def build_scan_gap_workload() -> Binary:
    """Vector code reachable only indirectly: exercises lazy rewriting."""
    b = ProgramBuilder("chaos-gap")
    b.add_words("buf", [5, 6] + [0] * 8)
    b.add_words("slot", [0])
    b.set_text("""
_start:
    la t0, hidden
    li t1, {slot}
    sd t0, 0(t1)
    li a0, {buf}
    li a1, 2
    ld t0, 0(t1)
    jalr t0
    li a7, 93
    li a0, 0
    ecall
    .word 0xffffffff
hidden:
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    ret
""")
    return b.build()


def build_migration_workload(n: int = 24) -> Binary:
    """Strip-mined vector loop with state live across iterations."""
    b = ProgramBuilder("chaos-mig")
    b.add_words("x", list(range(1, n + 1)))
    b.add_words("y", list(range(100, 100 + n)))
    b.add_words("out", [0])
    b.set_text(f"""
_start:
    li a0, {{x}}
    li a1, {{y}}
    li a3, {n}
    li a4, 0
    vsetvli t0, zero, e64
    vmv.v.i v1, 0
loop:
    vsetvli t0, a3, e64
    vle64.v v2, (a0)
    vle64.v v3, (a1)
    vmacc.vv v1, v2, v3
    slli t1, t0, 3
    add a0, a0, t1
    add a1, a1, t1
    sub a3, a3, t0
    bnez a3, loop
    vsetvli t0, zero, e64
    vmv.v.i v2, 0
    vredsum.vs v3, v1, v2
    li t1, 1
    vsetvli t0, t1, e64
    addi sp, sp, -16
    vse64.v v3, (sp)
    ld t1, 0(sp)
    addi sp, sp, 16
    add a4, a4, t1
    li t0, {{out}}
    sd a4, 0(t0)
    li a7, 93
    li a0, 0
    ecall
""")
    return b.build()


# -- scenario plumbing -----------------------------------------------------


def _prepare(binary: Binary, *, max_recovery_depth: Optional[int] = None):
    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(binary, RV64GC)
    kernel = Kernel()
    kwargs = {}
    if max_recovery_depth is not None:
        kwargs["max_recovery_depth"] = max_recovery_depth
    runtime = ChimeraRuntime(
        result.binary, rewriter=rewriter, original=binary, **kwargs
    )
    runtime.install(kernel)
    process = make_process(result.binary)
    return kernel, runtime, process, result


def _expect_unrecoverable(name: str, result, runtime, *, detail: str = "") -> ScenarioResult:
    fault = result.fault
    if not isinstance(fault, UnrecoverableFault):
        return ScenarioResult(
            name, False,
            f"expected a structured UnrecoverableFault, got {fault!r}",
        )
    if runtime is not None and runtime.stats.unrecoverable_faults < 1:
        return ScenarioResult(name, False, "stats.unrecoverable_faults not incremented")
    note = fault.args[0]
    return ScenarioResult(name, True, detail or f"structured: {note}")


def scenario_drop_fault_entries() -> ScenarioResult:
    binary = build_erroneous_workload()
    kernel, runtime, process, _ = _prepare(binary)
    injector = DropFaultTableInjector().install(kernel=kernel, runtime=runtime)
    res = kernel.run(process, Core(0, RV64GC))
    verdict = _expect_unrecoverable(injector.name, res, runtime)
    if verdict.passed and runtime.stats.fault_table_misses < 1:
        return ScenarioResult(injector.name, False, "fault_table_misses not counted")
    if verdict.passed and injector.dropped == 0:
        return ScenarioResult(injector.name, False, "injector never fired")
    return verdict


def scenario_corrupt_fault_entry() -> ScenarioResult:
    binary = build_erroneous_workload()
    kernel, runtime, process, result = _prepare(binary)
    # Aim the corrupt redirects at a reserved mid-parcel of the first
    # patched window (offset 6 = P3): a fault that retires nothing.
    regions = result.binary.metadata["chimera"]["patched_regions"]
    smile = [r for r in regions if r[2] == "smile"]
    if not smile:
        return ScenarioResult("corrupt-fault-entry", False, "no SMILE window to corrupt")
    parcel = smile[0][0] + 6
    injector = CorruptFaultTableInjector(parcel).install(kernel=kernel, runtime=runtime)
    res = kernel.run(process, Core(0, RV64GC))
    verdict = _expect_unrecoverable(injector.name, res, runtime)
    if not verdict.passed:
        return verdict
    fault = res.fault
    if runtime.stats.recovery_loop_aborts != 1:
        return ScenarioResult(injector.name, False, "loop guard did not fire exactly once")
    if not 0 < fault.attempts <= runtime.max_recovery_depth:
        return ScenarioResult(
            injector.name, False,
            f"attempts {fault.attempts} not bounded by depth {runtime.max_recovery_depth}",
        )
    return ScenarioResult(
        injector.name, True,
        f"loop guard aborted after {fault.attempts}/{runtime.max_recovery_depth} attempts",
    )


def scenario_clobber_gp() -> ScenarioResult:
    binary = build_erroneous_workload()
    kernel, runtime, process, _ = _prepare(binary)
    injector = ClobberGpInjector().install(kernel=kernel, runtime=runtime)
    res = kernel.run(process, Core(0, RV64GC))
    return _expect_unrecoverable(injector.name, res, runtime)


def scenario_signal_mid_trampoline() -> ScenarioResult:
    binary = build_erroneous_workload(with_signal_handler=True)
    kernel, runtime, process, _ = _prepare(binary)
    injector = SignalMidTrampolineInjector(SIGSEGV).install(kernel=kernel, runtime=runtime)
    res = kernel.run(process, Core(0, RV64GC))
    name = injector.name
    if not res.ok:
        return ScenarioResult(name, False, f"program failed under mid-trampoline signal: {res.fault!r}")
    if not injector.delivered:
        return ScenarioResult(name, False, "injector never delivered the signal")
    if runtime.stats.signals_gp_restored < 1:
        return ScenarioResult(name, False, "gp was not restored for the handler (Fig. 10)")
    hits = process.space.read_u64(binary.symbol_addr("hits"))
    gp_seen = process.space.read_u64(binary.symbol_addr("gp_seen"))
    if hits != 1:
        return ScenarioResult(name, False, f"handler ran {hits} times, expected 1")
    if gp_seen != binary.global_pointer:
        return ScenarioResult(name, False, f"handler observed gp={gp_seen:#x}, not the ABI value")
    return ScenarioResult(name, True, "handler ran on ABI gp; fault recovered after sigreturn")


def scenario_corrupt_signal_frame() -> ScenarioResult:
    binary = build_erroneous_workload(with_signal_handler=True)
    kernel, runtime, process, _ = _prepare(binary)
    injector = CorruptSignalFrameInjector(SIGSEGV).install(kernel=kernel, runtime=runtime)
    res = kernel.run(process, Core(0, RV64GC))
    # The failure is the kernel's (sigreturn), not the runtime's: don't
    # require the runtime counter here.
    return _expect_unrecoverable(injector.name, res, None)


def scenario_stale_decode_cache() -> ScenarioResult:
    binary = build_scan_gap_workload()
    kernel, runtime, process, _ = _prepare(binary)
    injector = StaleDecodeCacheInjector().install(kernel=kernel, runtime=runtime)
    res = kernel.run(process, Core(0, RV64GC))
    verdict = _expect_unrecoverable(injector.name, res, runtime)
    if verdict.passed and not injector.restored:
        return ScenarioResult(injector.name, False, "injector never restored stale entries")
    if verdict.passed and runtime.stats.runtime_rewrites < 1:
        return ScenarioResult(injector.name, False, "lazy rewrite never happened")
    return verdict


def scenario_interrupt_migration() -> ScenarioResult:
    name = "interrupt-migration"
    binary = build_migration_workload()
    rewriter = ChimeraRewriter()
    views = {
        "rv64gcv": rewriter.rewrite(binary, RV64GCV).binary,
        "rv64gc": rewriter.rewrite(binary, RV64GC).binary,
    }
    process = MMViewProcess("chaos-mig", views, initial="rv64gcv")
    kernel = Kernel()
    probes = MigrationProbeManager(process)
    probes.install(kernel)
    ChimeraRuntime(views["rv64gc"], rewriter=rewriter, original=binary).install(kernel)
    injector = MigrationCorruptionInjector().install(probes=probes)
    cpu = kernel.make_cpu(process, Core(0, RV64GCV))

    # Step until the pc sits inside a migration-unsafe region, then
    # request a migration so a probe gets armed.
    armed = False
    for _ in range(5_000):
        try:
            cpu.step()
        except EcallTrap:
            try:
                handle_syscall(kernel, process, cpu)
            except ExitRequest:
                break
            continue
        except SimFault as fault:
            try:
                if not kernel.dispatch_fault(process, cpu, fault):
                    return ScenarioResult(name, False, f"unexpected kill: {fault!r}")
            except UnrecoverableFault as unrec:
                if injector.fired:
                    return ScenarioResult(
                        name, True, f"structured: {unrec.args[0]}"
                    )
                return ScenarioResult(name, False, f"premature abort: {unrec!r}")
            continue
        if not armed and not process.migration_safe_pc(cpu.pc):
            if not probes.request_migration(cpu, "rv64gc"):
                armed = True
    if not armed:
        return ScenarioResult(name, False, "never found an unsafe pc to arm a probe at")
    return ScenarioResult(name, False, "probe never fired / corruption never surfaced")


def scenario_self_heal_bitrot() -> ScenarioResult:
    """Bitrot a trampoline under ``self_heal=True``: the runtime must
    quarantine exactly that patch and the workload must still finish
    with the correct output (the tentpole's survivable scenario, the
    inverse of the kill-expecting corruptions above)."""
    name = "self-heal-bitrot"
    binary = build_erroneous_workload()
    result = ChimeraRewriter().rewrite(binary, RV64GC)
    regions = result.binary.metadata["chimera"]["patched_regions"]
    # Only the lowest-addressed SMILE window is on the workload's normal
    # path (later ones are preserved secondary trampolines that only
    # erroneous entries reach); bitrot must hit code that executes.
    smile = sorted(r for r in regions if r[2] in ("smile", "smile-dp"))[:1]
    try:
        injector = TrampolineBitrotInjector(smile)
    except ValueError as exc:
        return ScenarioResult(name, False, str(exc))
    kernel = Kernel()
    runtime = ChimeraRuntime(result.binary, self_heal=True)
    runtime.install(kernel)
    process = make_process(result.binary)
    injector.corrupt(process)
    res = kernel.run(process, Core(0, RV64GC))
    if not res.ok:
        return ScenarioResult(name, False, f"workload died after bitrot: {res.fault!r}")
    stats = runtime.stats
    if stats.patch_rollbacks < 1:
        return ScenarioResult(name, False, "no rollback happened")
    if stats.unrecoverable_faults:
        return ScenarioResult(
            name, False, f"{stats.unrecoverable_faults} unrecoverable faults raised")
    out = process.space.read_u64(binary.symbol_addr("out"))
    buf0 = process.space.read_u64(binary.symbol_addr("buf"))
    buf1 = process.space.read_u64(binary.symbol_addr("buf") + 8)
    if (out, buf0, buf1) != (2, 40, 80):
        return ScenarioResult(
            name, False,
            f"wrong output after heal: out={out} buf=[{buf0},{buf1}]")
    return ScenarioResult(
        name, True,
        f"quarantined 1 patch ({stats.patch_rollbacks} rollback), output correct")


def scenario_trace_tier_sweep() -> ScenarioResult:
    """Run the survivable bitrot attack twice — trace tier disabled and
    forced hot (threshold 1) — and demand the attack lands identically:
    same heal, same rollback count, same final architectural state and
    output, with zero stale-trace executions (the healed bytes are what
    the traced run executes)."""
    name = "trace-tier-sweep"
    binary = build_erroneous_workload()
    result = ChimeraRewriter().rewrite(binary, RV64GC)
    regions = result.binary.metadata["chimera"]["patched_regions"]
    smile = sorted(r for r in regions if r[2] in ("smile", "smile-dp"))[:1]
    try:
        TrampolineBitrotInjector(smile)
    except ValueError as exc:
        return ScenarioResult(name, False, str(exc))

    def attacked_run(**kernel_kwargs):
        kernel = Kernel(**kernel_kwargs)
        runtime = ChimeraRuntime(result.binary, self_heal=True)
        runtime.install(kernel)
        process = make_process(result.binary)
        TrampolineBitrotInjector(smile).corrupt(process)
        res = kernel.run(process, Core(0, RV64GC))
        state = (res.ok, res.exit_code, res.instret, res.cycles,
                 res.output, runtime.stats.patch_rollbacks,
                 runtime.stats.unrecoverable_faults,
                 process.space.read_u64(binary.symbol_addr("out")),
                 process.space.read_u64(binary.symbol_addr("buf")),
                 process.space.read_u64(binary.symbol_addr("buf") + 8))
        return state, res

    base_state, base_res = attacked_run(trace_cache=False)
    trace_state, trace_res = attacked_run(trace_threshold=1)
    if not base_res.ok:
        return ScenarioResult(
            name, False, f"baseline run died after bitrot: {base_res.fault!r}")
    if trace_state != base_state:
        return ScenarioResult(
            name, False,
            f"attack landed differently with traces on: "
            f"{trace_state} != {base_state}")
    if trace_res.counters.get("trace_instret", 0) <= 0:
        return ScenarioResult(
            name, False, "vacuous: the traced run never dispatched a trace")
    return ScenarioResult(
        name, True,
        f"bit-identical under attack with traces on "
        f"(instret={trace_state[2]}, rollbacks={trace_state[5]}, "
        f"{trace_res.counters.get('traces_compiled', 0)} traces compiled)")


ALL_SCENARIOS = (
    scenario_drop_fault_entries,
    scenario_corrupt_fault_entry,
    scenario_clobber_gp,
    scenario_signal_mid_trampoline,
    scenario_corrupt_signal_frame,
    scenario_stale_decode_cache,
    scenario_interrupt_migration,
    scenario_self_heal_bitrot,
    scenario_trace_tier_sweep,
)


def run_injector_scenarios() -> list[ScenarioResult]:
    return [scenario() for scenario in ALL_SCENARIOS]


# -- aggregate -------------------------------------------------------------


def run_chaos(
    original: Binary,
    *,
    target: IsaProfile = RV64GC,
    max_regions: int = 0,
    scenarios: bool = True,
    seed: Optional[int] = None,
    jobs: int = 1,
) -> ChaosReport:
    """Full chaos verdict for one workload binary.

    Sweeps run with a :class:`PcAssertionInjector` observing every CPU:
    a fault leaving the CPU without a pc trips an assertion, which the
    sweeper reports as ``python-crash`` — a hard failure.  The scenario
    half also runs the core-failure resilience scenarios
    (:mod:`repro.resilience.scenarios`); *seed* (default:
    ``REPRO_FUZZ_SEED``) drives their injectors.
    """
    report = ChaosReport()
    report.sweeps = run_workload_sweeps(
        original, target=target, max_regions=max_regions,
        injector=PcAssertionInjector(), jobs=jobs,
    )
    if scenarios:
        report.scenarios = run_injector_scenarios()
        # Imported here: scenarios pull in the measured scheduler, which
        # this module must not depend on at import time.
        from repro.resilience.scenarios import run_all as run_resilience_scenarios

        report.scenarios.extend(run_resilience_scenarios(seed))
    return report
