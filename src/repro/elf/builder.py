"""Program builder: assembly text + data definitions -> :class:`Binary`.

The builder plays the role of the compiler/linker in the paper's
pipeline: it fixes section addresses at "link time" (coupling control
flow to addresses, which is precisely what makes naive instruction
shifting unsafe) and anchors ``__global_pointer$`` in the data segment
per the RISC-V psABI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.elf.binary import Binary, Perm, Section
from repro.isa.assembler import Assembler

#: Default link-time layout, loosely mirroring lld's RISC-V defaults.
TEXT_BASE = 0x1_0000
RODATA_GAP = 0x1000
DATA_BASE = 0x40_0000
STACK_TOP = 0x7F_F000
STACK_SIZE = 0x2_0000
#: psABI: gp = start of .sdata + 0x800 so 12-bit offsets reach both ways.
GP_OFFSET = 0x800


class BuildError(ValueError):
    """Raised for layout conflicts or missing entry symbols."""


@dataclass
class _DataItem:
    name: str
    data: bytes
    align: int


class ProgramBuilder:
    """Build a :class:`Binary` from assembly text and data items.

    Typical use::

        b = ProgramBuilder("demo")
        buf = b.add_data("buf", bytes(1024))
        b.set_text('''
        _start:
            li a0, 0
            ...
            ecall
        ''')
        binary = b.build()
    """

    def __init__(
        self,
        name: str,
        *,
        text_base: int = TEXT_BASE,
        data_base: int = DATA_BASE,
    ):
        self.name = name
        self.text_base = text_base
        self.data_base = data_base
        self._text_source: Optional[str] = None
        self._data_items: list[_DataItem] = []
        self._data_cursor = 0
        self.entry_symbol = "_start"
        #: Labels to export as function symbols (recursive-scan seeds,
        #: like a non-stripped binary's symtab entries).
        self.function_labels: set[str] = set()

    def mark_function(self, label: str) -> None:
        """Export *label* as a function symbol in the built binary."""
        self.function_labels.add(label)

    # -- data ---------------------------------------------------------------

    def add_data(self, name: str, data: bytes | int, align: int = 8) -> int:
        """Add a named data object; *data* may be bytes or a byte count.

        Returns the absolute address the object will occupy.
        """
        blob = bytes(data) if isinstance(data, int) else bytes(data)
        self._data_cursor = _align_up(self._data_cursor, align)
        addr = self.data_base + self._data_cursor
        self._data_items.append(_DataItem(name, blob, align))
        self._data_cursor += len(blob)
        return addr

    def add_words(self, name: str, values: list[int], width: int = 8) -> int:
        """Add an array of *width*-byte little-endian integers."""
        blob = b"".join((v & ((1 << (8 * width)) - 1)).to_bytes(width, "little") for v in values)
        return self.add_data(name, blob, align=width)

    def data_addr_of(self, name: str) -> int:
        """Address a previously added data item will get (pre-build query)."""
        cursor = 0
        for item in self._data_items:
            cursor = _align_up(cursor, item.align)
            if item.name == name:
                return self.data_base + cursor
            cursor += len(item.data)
        raise KeyError(name)

    # -- text ------------------------------------------------------------

    def set_text(self, source: str) -> None:
        """Set the assembly source for the ``.text`` section."""
        self._text_source = source

    # -- build -------------------------------------------------------------

    def build(self) -> Binary:
        """Assemble and lay out the final image."""
        if self._text_source is None:
            raise BuildError("no text source set")
        # Make data symbols visible to the assembler as labels by
        # prepending nothing -- instead we substitute {name} placeholders.
        source = self._substitute_data_symbols(self._text_source)
        program = Assembler(base=self.text_base).assemble(source)

        binary = Binary(self.name)
        binary.add_section(
            Section(".text", self.text_base, bytearray(program.code), Perm.RX)
        )

        data = bytearray()
        symbols: list[tuple[str, int, int]] = []
        for item in self._data_items:
            pad = _align_up(len(data), item.align) - len(data)
            data.extend(bytes(pad))
            symbols.append((item.name, self.data_base + len(data), len(item.data)))
            data.extend(item.data)
        # gp (data_base + GP_OFFSET) and the SMILE fault window just past
        # it must land inside the mapped, non-executable data segment.
        min_data = GP_OFFSET * 2
        if len(data) < min_data:
            data.extend(bytes(min_data - len(data)))
        binary.add_section(Section(".data", self.data_base, data, Perm.RW))

        for name, addr, size in symbols:
            binary.add_symbol(name, addr, size, kind="object")
        for label, addr in program.labels.items():
            is_func = label == self.entry_symbol or label in self.function_labels
            binary.add_symbol(label, addr, kind="func" if is_func else "label")

        if self.entry_symbol not in program.labels:
            raise BuildError(f"entry symbol {self.entry_symbol!r} not defined")
        binary.entry = program.labels[self.entry_symbol]
        binary.global_pointer = self.data_base + GP_OFFSET
        binary.add_symbol("__global_pointer$", binary.global_pointer, kind="object")
        binary.metadata["stack_top"] = STACK_TOP
        binary.metadata["stack_size"] = STACK_SIZE
        return binary

    def _substitute_data_symbols(self, source: str) -> str:
        """Replace ``{name}`` placeholders with data item addresses."""
        if "{" not in source:
            return source
        mapping: dict[str, int] = {}
        cursor = 0
        for item in self._data_items:
            cursor = _align_up(cursor, item.align)
            mapping[item.name] = self.data_base + cursor
            cursor += len(item.data)
        mapping["gp_value"] = self.data_base + GP_OFFSET
        try:
            return source.format_map({k: v for k, v in mapping.items()})
        except KeyError as exc:
            raise BuildError(f"unknown data symbol {exc} referenced in text") from exc


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
