"""Extended RVV subset: shifts, min/max, .vx forms, vmv.x.s —
encoding roundtrips, CPU semantics, and downgrade-template equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.decoding import decode
from repro.isa.disassembler import disassemble, format_instruction
from repro.isa.fields import sign_extend

from tests.unit.test_cpu_semantics import make_cpu, run_to_break
from tests.unit.test_translate import (
    fresh_cpu,
    region_elems,
    set_region_state,
    translate_and_run,
)

NEW_VV = ["vmin.vv", "vminu.vv", "vmax.vv", "vmaxu.vv", "vsll.vv", "vsrl.vv", "vsra.vv"]
NEW_VX = ["vsub.vx", "vmul.vx", "vsll.vx", "vsrl.vx", "vsra.vx"]

U64 = 2**64 - 1


class TestEncodingRoundtrip:
    @pytest.mark.parametrize("mnem", NEW_VV)
    def test_vv(self, mnem):
        code = assemble(f"{mnem} v1, v2, v3\n").code
        back = decode(code, 0)
        assert back.mnemonic == mnem
        assert (back.vd, back.vs2, back.vs1) == (1, 2, 3)

    @pytest.mark.parametrize("mnem", NEW_VX)
    def test_vx(self, mnem):
        code = assemble(f"{mnem} v4, v5, a2\n").code
        back = decode(code, 0)
        assert back.mnemonic == mnem
        assert (back.vd, back.vs2, back.rs1) == (4, 5, 12)

    def test_vmv_x_s(self):
        code = assemble("vmv.x.s a0, v7\n").code
        back = decode(code, 0)
        assert back.mnemonic == "vmv.x.s"
        assert (back.rd, back.vs2) == (10, 7)

    @pytest.mark.parametrize("mnem", NEW_VV + NEW_VX + ["vmv.x.s"])
    def test_format_roundtrip(self, mnem):
        asm = {
            "vmv.x.s": "vmv.x.s t0, v3",
        }.get(mnem, f"{mnem} v1, v2, {'a3' if mnem.endswith('.vx') else 'v3'}")
        original = assemble(asm + "\n").code
        instr = disassemble(original)[0]
        instr.addr = None
        assert assemble(format_instruction(instr) + "\n").code == original


def _setup_two_vectors(xs, ys):
    asm = ["li t0, 0x8000"]
    for i, v in enumerate(xs):
        asm += [f"li a2, {v}", f"sd a2, {i * 8}(t0)"]
    for i, v in enumerate(ys):
        asm += [f"li a2, {v}", f"sd a2, {64 + i * 8}(t0)"]
    asm += [
        f"li a0, {len(xs)}",
        "vsetvli t1, a0, e64",
        "vle64.v v1, (t0)",
        "addi t2, t0, 64",
        "vle64.v v2, (t2)",
    ]
    return "\n".join(asm)


class TestCpuSemantics:
    def test_min_max_signed(self):
        xs = [5, (-3) & U64, 7]
        ys = [2, 1, (-9) & U64]
        cpu = make_cpu(_setup_two_vectors(xs, ys) + "\nvmin.vv v3, v1, v2\nvmax.vv v4, v1, v2")
        run_to_break(cpu)
        assert [sign_extend(v, 64) for v in cpu.vector.read_elems(3, 3)] == [2, -3, -9]
        assert [sign_extend(v, 64) for v in cpu.vector.read_elems(4, 3)] == [5, 1, 7]

    def test_min_max_unsigned(self):
        xs = [5, (-3) & U64]
        ys = [2, 1]
        cpu = make_cpu(_setup_two_vectors(xs, ys) + "\nvminu.vv v3, v1, v2\nvmaxu.vv v4, v1, v2")
        run_to_break(cpu)
        assert cpu.vector.read_elems(3, 2) == [2, 1]
        assert cpu.vector.read_elems(4, 2) == [5, (-3) & U64]

    def test_shifts_vv(self):
        xs = [0b1000, (-8) & U64]
        ys = [2, 1]
        cpu = make_cpu(_setup_two_vectors(xs, ys) +
                       "\nvsll.vv v3, v1, v2\nvsrl.vv v4, v1, v2\nvsra.vv v5, v1, v2")
        run_to_break(cpu)
        assert cpu.vector.read_elems(3, 2) == [32, ((-8) << 1) & U64]
        assert cpu.vector.read_elems(4, 2) == [2, ((-8) & U64) >> 1]
        assert sign_extend(cpu.vector.read_elems(5, 2)[1], 64) == -4

    def test_shift_amount_masked_to_sew(self):
        cpu = make_cpu(_setup_two_vectors([1], [65]) + "\nvsll.vv v3, v1, v2")
        run_to_break(cpu)
        assert cpu.vector.read_elem(3, 0) == 2  # 65 & 63 == 1

    def test_vx_forms(self):
        cpu = make_cpu(_setup_two_vectors([10, 20], [0, 0]) + """
li a3, 3
vsub.vx v3, v1, a3
vmul.vx v4, v1, a3
vsll.vx v5, v1, a3
""")
        run_to_break(cpu)
        assert cpu.vector.read_elems(3, 2) == [7, 17]
        assert cpu.vector.read_elems(4, 2) == [30, 60]
        assert cpu.vector.read_elems(5, 2) == [80, 160]

    def test_vmv_x_s(self):
        cpu = make_cpu(_setup_two_vectors([(-7) & U64, 3], [0, 0]) + "\nvmv.x.s a4, v1")
        run_to_break(cpu)
        assert sign_extend(cpu.get_reg(14), 64) == -7

    def test_vmv_x_s_sign_extends_sew32(self):
        cpu = make_cpu("""
li a0, 2
vsetvli t0, a0, e32
li a1, 0xFFFFFFFF
vmv.v.x v1, a1
vmv.x.s a4, v1
""")
        run_to_break(cpu)
        assert cpu.get_reg(14) == U64  # -1 sign-extended from SEW=32


class TestDowngradeTemplates:
    @pytest.mark.parametrize("mnem,fn", [
        ("vsll.vv", lambda a, b: (a << (b & 63)) & U64),
        ("vsrl.vv", lambda a, b: a >> (b & 63)),
        ("vsra.vv", lambda a, b: (sign_extend(a, 64) >> (b & 63)) & U64),
        ("vmin.vv", lambda a, b: a if sign_extend(a, 64) <= sign_extend(b, 64) else b),
        ("vmax.vv", lambda a, b: a if sign_extend(a, 64) >= sign_extend(b, 64) else b),
        ("vminu.vv", min),
        ("vmaxu.vv", max),
    ])
    def test_vv_templates(self, mnem, fn):
        cpu = fresh_cpu()
        xs = [9, (-14) & U64, 3]
        ys = [4, 5, 62]
        set_region_state(cpu, 3, 64, {1: xs, 2: ys})
        translate_and_run(cpu, f"{mnem} v3, v1, v2")
        assert region_elems(cpu, 3, 3) == [fn(a, b) for a, b in zip(xs, ys)]

    @pytest.mark.parametrize("mnem,fn", [
        ("vsub.vx", lambda a, x: (a - x) & U64),
        ("vmul.vx", lambda a, x: (a * x) & U64),
        ("vsll.vx", lambda a, x: (a << (x & 63)) & U64),
        ("vsra.vx", lambda a, x: (sign_extend(a, 64) >> (x & 63)) & U64),
    ])
    def test_vx_templates(self, mnem, fn):
        cpu = fresh_cpu()
        xs = [100, (-50) & U64]
        set_region_state(cpu, 2, 64, {1: xs})
        cpu.set_reg(11, 3)
        translate_and_run(cpu, f"{mnem} v2, v1, a1")
        assert region_elems(cpu, 2, 2) == [fn(a, 3) for a in xs]

    def test_minu_sew32_zero_extends(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 2, 32, {1: [0xFFFFFFFF, 1], 2: [2, 0xFFFFFFFF]})
        translate_and_run(cpu, "vminu.vv v3, v1, v2")
        assert region_elems(cpu, 3, 2, sew=32) == [2, 1]

    def test_vmv_x_s_template(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 1, 64, {5: [(-77) & U64]})
        translate_and_run(cpu, "vmv.x.s a0, v5")
        assert sign_extend(cpu.get_reg(10), 64) == -77

    def test_vmv_x_s_template_sew32(self):
        cpu = fresh_cpu()
        set_region_state(cpu, 2, 32, {5: [0x80000001]})
        translate_and_run(cpu, "vmv.x.s a0, v5")
        assert cpu.get_reg(10) == sign_extend(0x80000001, 32) & U64

    @given(st.lists(st.integers(min_value=0, max_value=U64), min_size=1, max_size=4),
           st.integers(min_value=0, max_value=U64))
    @settings(max_examples=15, deadline=None)
    def test_vx_property_vs_cpu(self, xs, x):
        """Template output must equal the vector unit's for random inputs."""
        ref = make_cpu(_setup_two_vectors(xs, [0] * len(xs)) + "\nmv a3, a6\nvmul.vx v3, v1, a3")
        ref.set_reg(16, x)
        run_to_break(ref)
        expected = ref.vector.read_elems(3, len(xs))

        cpu = fresh_cpu()
        set_region_state(cpu, len(xs), 64, {1: xs})
        cpu.set_reg(11, x)
        translate_and_run(cpu, "vmul.vx v3, v1, a1")
        assert region_elems(cpu, 3, len(xs)) == expected
