"""Cycle cost model and architecture parameters.

Absolute cycle counts on the paper's SpacemiT K1 are unknowable from
here; what the experiments need is the *relative* cost structure:

* trampolines cost two extra straight-line instructions;
* trap-based trampolines cost a kernel round trip (hundreds of cycles);
* Safer-style proactive checks cost a handful of instructions on every
  indirect jump;
* vector instructions retire multiple elements per op, giving extension
  cores their speedup.

``ArchParams`` centralizes those knobs and the scaling factor used for
synthetic binaries (see DESIGN.md "Scaling note").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class ArchParams:
    """Architecture/OS parameters for one simulated machine.

    ``jal_reach`` is the +-range of a single ``jal`` (paper: +-1 MB on
    RISC-V vs +-128 MB on ARM — the reason ARMore's approach breaks
    down on RISC-V).  ``scale`` divides synthetic binary sizes *and*
    ``jal_reach`` together so reachability fractions are preserved.
    """

    name: str = "rv64-board"
    #: +-reach of one jal instruction, after scaling.
    jal_reach: int = 1 << 20
    #: +-reach of an auipc+jalr pair (never scaled; effectively infinite here).
    auipc_reach: int = 1 << 31
    #: Cycles for a trap-based trampoline (user->kernel->user + handler).
    trap_cost: int = 200
    #: Cycles for Chimera's deterministic-fault handling (same kernel
    #: round trip plus a table lookup).
    fault_handling_cost: int = 250
    #: Cycles to migrate a task between cores (FAM / scheduler).
    migration_cost: int = 15000
    #: Cycles for one work-steal attempt.
    steal_cost: int = 200
    #: VLEN in bits for extension cores.
    vlen: int = 256
    #: Synthetic-binary scale divisor (documented in DESIGN.md).
    scale: int = 1

    def scaled(self, scale: int) -> "ArchParams":
        """Return a copy with sizes/jal reach divided by *scale*."""
        return ArchParams(
            name=f"{self.name}/s{scale}",
            jal_reach=self.jal_reach // scale,
            auipc_reach=self.auipc_reach,
            trap_cost=self.trap_cost,
            fault_handling_cost=self.fault_handling_cost,
            migration_cost=self.migration_cost,
            steal_cost=self.steal_cost,
            vlen=self.vlen,
            scale=scale,
        )


#: Default parameters used across tests and benchmarks.
DEFAULT_ARCH = ArchParams()

#: Per-mnemonic latency classes (cycles).  Everything unlisted costs 1.
_BASE_COSTS: dict[str, int] = {
    "lb": 3, "lh": 3, "lw": 3, "ld": 3, "lbu": 3, "lhu": 3, "lwu": 3,
    "sb": 2, "sh": 2, "sw": 2, "sd": 2,
    "c.lw": 3, "c.ld": 3, "c.lwsp": 3, "c.ldsp": 3,
    "c.sw": 2, "c.sd": 2, "c.swsp": 2, "c.sdsp": 2,
    "mul": 3, "mulh": 4, "mulhsu": 4, "mulhu": 4, "mulw": 3,
    "div": 20, "divu": 20, "rem": 20, "remu": 20,
    "divw": 20, "divuw": 20, "remw": 20, "remuw": 20,
    "jal": 2, "jalr": 3, "c.j": 2, "c.jr": 3, "c.jalr": 3,
    "ecall": 10, "ebreak": 10, "c.ebreak": 10,
    "vsetvli": 2,
    "vle32.v": 4, "vle64.v": 4, "vse32.v": 4, "vse64.v": 4,
}

#: Extra cycles when a conditional branch is taken (pipeline redirect).
TAKEN_BRANCH_PENALTY = 1

#: Cycles per vector arithmetic op, independent of element count up to
#: one VLEN register (models the K1's wide datapath).
_VECTOR_ARITH_COST = 2


class CostModel:
    """Maps retired instructions to cycles.

    Deliberately simple: in-order single-issue with fixed latency
    classes.  The experiments compare systems under the *same* model, so
    relative effects (trampoline vs trap vs check overhead, vector
    speedup) dominate and absolute calibration does not matter.
    """

    def __init__(self, params: ArchParams = DEFAULT_ARCH):
        self.params = params

    def instruction_cost(self, instr: Instruction, *, taken: bool = False) -> int:
        """Cycles for retiring *instr*; *taken* marks a taken branch."""
        cost = _BASE_COSTS.get(instr.mnemonic)
        if cost is None:
            cost = _VECTOR_ARITH_COST if instr.is_vector() else 1
        if taken and instr.is_branch():
            cost += TAKEN_BRANCH_PENALTY
        return cost

    @property
    def trap_cost(self) -> int:
        """Cycles for a trap-based trampoline round trip."""
        return self.params.trap_cost

    @property
    def fault_handling_cost(self) -> int:
        """Cycles for one Chimera deterministic-fault recovery."""
        return self.params.fault_handling_cost
