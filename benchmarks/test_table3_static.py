"""Table 3: static rewriting statistics of CHBP (full translation mode).

Code size, extension-instruction share, trampoline count, and the
dead-register outcomes — our exit-position shifting vs traditional
register liveness — per benchmark, with the paper's numbers alongside.
"""

from dataclasses import dataclass
from functools import lru_cache

import pytest

from benchmarks.helpers import SCALE, emit_bench, print_table, scaled_arch
from repro.telemetry import MetricsRegistry
from repro.analysis.scan import RecursiveScanner
from repro.core.patcher import ChbpPatcher
from repro.isa.extensions import Extension, RV64GC
from repro.workloads.spec_profiles import APP_PROFILES, PAPER_HEADLINES, PROFILES, SPEC_PROFILES
from repro.workloads.synthetic import SyntheticBinary

ALL_ROWS = sorted(APP_PROFILES) + sorted(SPEC_PROFILES)


@dataclass
class StaticRow:
    name: str
    code_kb: float
    ext_pct: float
    trampolines: int
    trad_failures: int
    not_found: int
    exit_candidates: int


@lru_cache(maxsize=None)
def static_stats(name: str) -> StaticRow:
    profile = PROFILES[name]
    binary = SyntheticBinary(profile, scale=SCALE).build()
    scan = RecursiveScanner().scan(binary)
    n = len(scan.instructions)
    n_ext = sum(1 for i in scan.instructions.values()
                if i.extension in (Extension.V, Extension.ZBA))
    patcher = ChbpPatcher(binary, RV64GC, arch=scaled_arch(), mode="full")
    patcher.patch()
    s = patcher.stats
    return StaticRow(
        name=name,
        code_kb=binary.text.size / 1024,
        ext_pct=100.0 * n_ext / max(1, n),
        trampolines=s.trampolines,
        trad_failures=s.traditional_liveness_failures,
        not_found=s.dead_reg_not_found,
        exit_candidates=s.exit_candidates,
    )


@pytest.fixture(scope="module")
def rows():
    return [static_stats(name) for name in ALL_ROWS]


def test_table3_regenerate(benchmark, rows):
    def report():
        table = []
        for r in rows:
            p = PROFILES[r.name]
            table.append([
                r.name,
                f"{r.code_kb:.0f}KB",
                f"{r.ext_pct:.2f}%",
                r.trampolines,
                f"{r.not_found}/{r.trad_failures}",
                f"(paper {p.paper_deadreg_ours}/{p.paper_deadreg_traditional})",
                f"{p.code_size_mb}MB",
                f"{p.ext_inst_pct}%",
                p.paper_trampolines,
            ])
        print_table(
            f"Table 3 — CHBP static rewriting stats (scale 1/{SCALE})",
            ["benchmark", "code", "ext%", "tramp",
             "deadreg ours/trad", "", "paper-code", "paper-ext%", "paper-tramp"],
            table,
        )
        registry = MetricsRegistry()
        for r in rows:
            registry.gauge("bench.trampolines", r.trampolines, benchmark=r.name)
            registry.gauge("bench.ext_pct", r.ext_pct, benchmark=r.name)
            registry.gauge("bench.deadreg_not_found", r.not_found, benchmark=r.name)
            registry.gauge("bench.deadreg_trad_failures", r.trad_failures,
                           benchmark=r.name)
        emit_bench("table3_static", registry)
        return table

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    assert len(table) == len(ALL_ROWS)


def test_dead_register_rates_match_paper(rows):
    total_cand = sum(r.exit_candidates for r in rows)
    total_trad_fail = sum(r.trad_failures for r in rows)
    total_not_found = sum(r.not_found for r in rows)
    trad_fail_rate = 100.0 * total_trad_fail / max(1, total_cand)
    ours_fail_rate = 100.0 * total_not_found / max(1, total_cand)
    print(f"\ntraditional liveness failed: {trad_fail_rate:.1f}% "
          f"(paper {PAPER_HEADLINES['dead_reg_failed_traditional_pct']}%)")
    print(f"exit shifting failed:        {ours_fail_rate:.1f}% "
          f"(paper {100 - PAPER_HEADLINES['dead_reg_found_ours_pct']:.1f}%)")
    assert 15.0 <= trad_fail_rate <= 60.0
    assert ours_fail_rate <= 5.0
    assert ours_fail_rate < trad_fail_rate / 5


def test_ext_share_tracks_paper_columns(rows):
    for r in rows:
        p = PROFILES[r.name]
        assert 0.2 * p.ext_inst_pct <= r.ext_pct <= 3.5 * p.ext_inst_pct, r.name


def test_trampoline_counts_scale_with_ext_density(rows):
    by_name = {r.name: r for r in rows}
    # More extension instructions (absolute) -> more trampolines.
    assert by_name["wrf_r"].trampolines > by_name["perlbench_r"].trampolines
    assert by_name["cam4_r"].trampolines > by_name["omnetpp_r"].trampolines
