"""End-to-end cross-core migration through MMViews.

A task starts on an extension core (running vector code natively),
gets preempted mid-run, migrates to a base core (switching to the
downgraded MMView, converting vector state to the simulated-register
region), finishes there — and the result must match a single-core run.
"""

import pytest

from repro.core.mmview import MMViewProcess
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.cpu import Cpu
from repro.sim.faults import ExitRequest, SimFault
from repro.sim.machine import Core, Kernel


def striped_workload(n=24):
    """A strip-mined vector loop long enough to preempt mid-flight,
    with vector state live ACROSS iterations (the accumulate register)."""
    b = ProgramBuilder("mig")
    b.add_words("x", list(range(1, n + 1)))
    b.add_words("y", list(range(100, 100 + n)))
    b.add_words("out", [0])
    b.set_text(f"""
_start:
    li a0, {{x}}
    li a1, {{y}}
    li a3, {n}
    li a4, 0
    vsetvli t0, zero, e64
    vmv.v.i v1, 0
loop:
    vsetvli t0, a3, e64
    vle64.v v2, (a0)
    vle64.v v3, (a1)
    vmacc.vv v1, v2, v3
    slli t1, t0, 3
    add a0, a0, t1
    add a1, a1, t1
    sub a3, a3, t0
    bnez a3, loop
    vsetvli t0, zero, e64
    vmv.v.i v2, 0
    vredsum.vs v3, v1, v2
    li t1, 1
    vsetvli t0, t1, e64
    addi sp, sp, -16
    vse64.v v3, (sp)
    ld t1, 0(sp)
    addi sp, sp, 16
    add a4, a4, t1
    li t0, {{out}}
    sd a4, 0(t0)
    li a7, 93
    li a0, 0
    ecall
""")
    return b.build()


def expected_dot(binary):
    proc = make_process(binary)
    res = Kernel().run(proc, Core(0, RV64GCV))
    assert res.ok
    return proc.space.read_u64(binary.symbol_addr("out"))


def make_views(binary, rewriter):
    return {
        "rv64gcv": rewriter.rewrite(binary, RV64GCV).binary,
        "rv64gc": rewriter.rewrite(binary, RV64GC).binary,
    }


def step_once(kernel, proc, cpu) -> bool:
    """One instruction with kernel services; True when the program exited."""
    from repro.sim.faults import EcallTrap
    from repro.sim.syscalls import handle_syscall

    try:
        cpu.step()
    except EcallTrap:
        try:
            handle_syscall(kernel, proc, cpu)
        except ExitRequest:
            return True
    except ExitRequest:
        return True
    except SimFault as fault:
        for handler in kernel._fault_handlers:
            if handler(kernel, proc, cpu, fault):
                return False
        raise
    return False


class TestMigrationEndToEnd:
    @pytest.mark.parametrize("preempt_after", [5, 17, 40, 90])
    def test_ext_to_base_migration_preserves_result(self, preempt_after):
        binary = striped_workload()
        expected = expected_dot(binary)

        rewriter = ChimeraRewriter()
        views = make_views(binary, rewriter)
        proc = MMViewProcess("mig", views, initial="rv64gcv")

        kernel = Kernel()
        ChimeraRuntime(views["rv64gc"], rewriter=rewriter, original=binary).install(kernel)

        ext_core = Core(0, RV64GCV)
        base_core = Core(1, RV64GC)
        cpu = kernel.make_cpu(proc, ext_core)

        # Phase 1: run a few instructions on the extension core.
        for _ in range(preempt_after):
            if step_once(kernel, proc, cpu):
                pytest.skip("finished before preemption point")

        # Phase 2: migrate (possibly delayed until a safe pc).
        if not proc.migrate(cpu, "rv64gc"):
            for _ in range(10_000):
                if step_once(kernel, proc, cpu):
                    # Finished before a safe point arrived: still correct.
                    assert proc.space.read_u64(binary.symbol_addr("out")) == expected
                    return
                if proc.try_commit_pending(cpu):
                    break
            else:
                raise AssertionError("pending migration never committed")
        assert proc.active_view == "rv64gc"

        # Phase 3: finish on the base core with a downgraded-view CPU.
        cpu2 = Cpu(proc.space, profile=base_core.profile, cost_model=cpu.cost)
        cpu2.regs[:] = cpu.regs
        cpu2.pc = cpu.pc
        cpu2.vector.restore(cpu.vector.snapshot())  # harmless; region is live
        res = kernel.run(proc, base_core, cpu=cpu2)
        assert res.ok, res.fault
        assert proc.space.read_u64(binary.symbol_addr("out")) == expected

    def test_round_trip_migration(self):
        """ext -> base -> ext mid-run, still correct."""
        binary = striped_workload()
        expected = expected_dot(binary)
        rewriter = ChimeraRewriter()
        views = make_views(binary, rewriter)
        proc = MMViewProcess("mig", views, initial="rv64gcv")
        kernel = Kernel()
        ChimeraRuntime(views["rv64gc"], rewriter=rewriter, original=binary).install(kernel)
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))

        finished = False

        def hop(cpu, to, profile):
            nonlocal finished
            if not proc.migrate(cpu, to):
                for _ in range(10_000):
                    if step_once(kernel, proc, cpu):
                        finished = True
                        return cpu
                    if proc.try_commit_pending(cpu):
                        break
            nxt = Cpu(proc.space, profile=profile, cost_model=cpu.cost)
            nxt.regs[:] = cpu.regs
            nxt.pc = cpu.pc
            nxt.vector.restore(cpu.vector.snapshot())
            return nxt

        for _ in range(12):
            step_once(kernel, proc, cpu)
        cpu = hop(cpu, "rv64gc", RV64GC)
        for _ in range(60):
            if finished or step_once(kernel, proc, cpu):
                finished = True
                break
        if not finished:
            cpu = hop(cpu, "rv64gcv", RV64GCV)
        if not finished:
            res = kernel.run(proc, Core(0, RV64GCV), cpu=cpu)
            assert res.ok, res.fault
        assert proc.space.read_u64(binary.symbol_addr("out")) == expected
