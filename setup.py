"""Compatibility shim so ``pip install -e .`` works in offline
environments without the ``wheel`` package (PEP 660 needs it; the legacy
setuptools develop path does not)."""

from setuptools import setup

setup()
