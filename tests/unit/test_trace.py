"""Tracer/profiler tests — including the 'normal path never traps' claim."""

import pytest

from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.machine import Core, Kernel
from repro.sim.trace import (
    BranchProfile,
    HotspotProfile,
    InstructionTrace,
    MultiTracer,
    RegionProfile,
    attach,
)
from repro.workloads.programs import VectorAddWorkload
from tests.conftest import run_program


class TestTracers:
    def test_instruction_trace_ring(self):
        from repro.elf.builder import ProgramBuilder
        from repro.sim.machine import Kernel, Core

        b = ProgramBuilder("t")
        b.set_text("_start:\nli a0, 3\nloop:\naddi a0, a0, -1\nbnez a0, loop\nli a7, 93\nli a0, 0\necall\n")
        binary = b.build()
        proc = make_process(binary)
        kernel = Kernel()
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))
        trace = InstructionTrace(capacity=4)
        attach(cpu, trace)
        kernel.run(proc, Core(0, RV64GCV), cpu=cpu)
        assert len(trace.buffer) == 4  # capacity-bounded
        # ecall traps before retiring, so the last traced instruction is
        # the preceding li (an addi).
        assert "addi" in trace.format(1)

    def test_hotspot_counts_loop_iterations(self):
        from repro.elf.builder import ProgramBuilder

        b = ProgramBuilder("t")
        b.set_text("_start:\nli a0, 5\nloop:\naddi a0, a0, -1\nbnez a0, loop\nli a7, 93\nli a0, 0\necall\n")
        binary = b.build()
        proc = make_process(binary)
        kernel = Kernel()
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))
        hp = HotspotProfile()
        attach(cpu, hp)
        kernel.run(proc, Core(0, RV64GCV), cpu=cpu)
        loop = binary.symbol_addr("loop")
        assert hp.counts[loop] == 5
        assert hp.hottest(1)[0][1] == 5

    def test_multitracer_fans_out(self):
        from repro.elf.builder import ProgramBuilder

        b = ProgramBuilder("t")
        b.set_text("_start:\nnop\nli a7, 93\nli a0, 0\necall\n")
        binary = b.build()
        proc = make_process(binary)
        kernel = Kernel()
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))
        hp, bp = HotspotProfile(), BranchProfile()
        hook = attach(cpu, hp, bp)
        assert isinstance(hook, MultiTracer)
        kernel.run(proc, Core(0, RV64GCV), cpu=cpu)
        # nop + two li; the trapping ecall does not retire through step().
        assert sum(hp.counts.values()) == 3


class TestNormalPathClaims:
    def test_rewritten_binary_spends_time_in_chimera_text(self):
        """RegionProfile proves the translated code actually executes."""
        binary = VectorAddWorkload(n=16).build("ext")
        rewriter = ChimeraRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        ct = result.binary.section(".chimera.text")
        proc = make_process(result.binary)
        kernel = Kernel()
        ChimeraRuntime(result.binary).install(kernel)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        rp = RegionProfile([
            ("text", result.binary.text.addr, result.binary.text.end),
            ("chimera", ct.addr, ct.end),
        ])
        attach(cpu, rp)
        res = kernel.run(proc, Core(0, RV64GC), cpu=cpu)
        assert res.ok
        assert rp.instructions["chimera"] > 0
        assert rp.share("<other>") == 0.0

    def test_normal_execution_raises_no_faults(self):
        """The paper's Assertion 2: normal executions pay only the
        trampoline jumps — zero fault-handler invocations."""
        binary = VectorAddWorkload(n=16).build("ext")
        rewriter = ChimeraRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        runtime = ChimeraRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        res = kernel.run(make_process(result.binary), Core(0, RV64GC))
        assert res.ok
        assert runtime.stats.deterministic_faults == 0
        assert runtime.stats.trap_redirects == 0
