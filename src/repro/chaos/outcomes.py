"""Outcome taxonomy for the chaos harness.

Every forced entry into a patched region ends in exactly one of:

* ``recovered-redirect`` — a deterministic fault was raised and the
  runtime redirected execution (or the entry was the trampoline head
  and flowed into ``.chimera.text`` legally);
* ``deterministic-kill`` — a deterministic fault was raised promptly
  and the process was terminated, either by the kernel's default action
  or by a structured :class:`~repro.sim.faults.UnrecoverableFault`;
* ``silent-divergence`` — a *modified* original instruction boundary
  executed past the grace window without faulting: the exact
  unintended-execution hazard the paper's §3.2 determinism argument
  rules out.  Always a hard failure;
* ``python-crash`` — the simulator itself raised a non-``SimFault``
  exception (``KeyError``, ``AttributeError``...).  Always a hard
  failure: robustness means structured degradation, not tracebacks;
* ``benign-undefined`` — an entry the architecture cannot produce or
  the paper makes no promise about (an odd/mid-instruction offset, or
  bytes the rewriter left untouched) that ran without crashing;
* ``admission-escape`` — a hard failure inside a region the static
  admission gate (:mod:`repro.verify.admission`) *admitted*: the
  verifier's invariants failed to predict a real divergence.  Always a
  hard failure, and the loudest one — it means the gate lied.

Only the first four come from the paper's correctness argument; the
fifth keeps the sweep honest about offsets that are out of scope rather
than silently folding them into a success bucket, and the sixth
cross-checks the verifier's ledger against the full P1/P2/P3 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

RECOVERED_REDIRECT = "recovered-redirect"
DETERMINISTIC_KILL = "deterministic-kill"
SILENT_DIVERGENCE = "silent-divergence"
PYTHON_CRASH = "python-crash"
BENIGN_UNDEFINED = "benign-undefined"
ADMISSION_ESCAPE = "admission-escape"

ALL_OUTCOMES = (
    RECOVERED_REDIRECT,
    DETERMINISTIC_KILL,
    SILENT_DIVERGENCE,
    PYTHON_CRASH,
    BENIGN_UNDEFINED,
    ADMISSION_ESCAPE,
)

#: Outcomes that fail a sweep outright.
HARD_FAILURES = frozenset({SILENT_DIVERGENCE, PYTHON_CRASH, ADMISSION_ESCAPE})


@dataclass
class AttackResult:
    """One forced entry point and what became of it."""

    addr: int
    region_start: int
    region_end: int
    region_kind: str  # "smile" | "smile-dp" | "trap"
    offset: int
    label: str  # head / P1 / P2 / P3 / padding / misaligned / trap...
    boundary: bool  # original instruction boundary?
    modified: bool  # bytes differ from the original binary?
    outcome: str
    detail: str = ""

    def __str__(self) -> str:
        flags = f"{'B' if self.boundary else '-'}{'M' if self.modified else '-'}"
        line = (f"{self.addr:#010x} +{self.offset:<2d} {self.region_kind:9s} "
                f"{self.label:10s} {flags}  {self.outcome}")
        return f"{line}  ({self.detail})" if self.detail else line


@dataclass
class SweepReport:
    """Every attack result for one (binary, patching mode) pair."""

    binary: str
    mode: str  # "smile" | "trap-fallback"
    results: list[AttackResult] = field(default_factory=list)
    #: Regions not attacked because of a sampling cap (never silent).
    skipped_regions: int = 0
    #: Admission-gate cross-check: regions the verifier admitted /
    #: rejected before the sweep (0/0 when no gate ran).
    verified_regions: int = 0
    rejected_regions: int = 0

    def counts(self) -> dict[str, int]:
        out = {outcome: 0 for outcome in ALL_OUTCOMES}
        for r in self.results:
            out[r.outcome] += 1
        return out

    @property
    def hard_failures(self) -> list[AttackResult]:
        return [r for r in self.results if r.outcome in HARD_FAILURES]

    @property
    def ok(self) -> bool:
        return not self.hard_failures

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{k}={v}" for k, v in counts.items() if v]
        head = (f"[{self.mode}] {self.binary}: {len(self.results)} attacks "
                f"({', '.join(parts) or 'no patched regions'})")
        lines = [head]
        if self.verified_regions:
            lines.append(
                f"  admission gate: {self.verified_regions} regions admitted, "
                f"{self.rejected_regions} rejected before the sweep")
        if self.skipped_regions:
            lines.append(f"  note: {self.skipped_regions} regions skipped by --max-regions cap")
        for failure in self.hard_failures:
            lines.append(f"  FAIL {failure}")
        return "\n".join(lines)


@dataclass
class ScenarioResult:
    """One runtime-corruption injector scenario and its verdict."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        return f"{'ok  ' if self.passed else 'FAIL'} {self.name}: {self.detail}"


@dataclass
class ChaosReport:
    """Aggregate verdict: sweeps across patching modes + injector scenarios."""

    sweeps: list[SweepReport] = field(default_factory=list)
    scenarios: list[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.sweeps) and all(s.passed for s in self.scenarios)

    def summary(self) -> str:
        lines = [s.summary() for s in self.sweeps]
        if self.scenarios:
            lines.append("injector scenarios:")
            lines.extend(f"  {s}" for s in self.scenarios)
        lines.append(f"chaos verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)
