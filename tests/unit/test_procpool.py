"""Fault-isolated process-pool verification.

The process executor must be invisible when nothing goes wrong —
byte-identical ledgers against the serial gate — and loudly structured
when something does: worker crashes and hangs attributed to the exact
region as :class:`~repro.resilience.failures.RegionFault` entries,
retries under the pipeline retry policy, quarantine verdicts once the
budget is exhausted, and a serial fallback when the pool itself cannot
be kept alive.
"""

import os

import pytest

from repro.chaos.pipeline_chaos import PipelineFailureInjector
from repro.core import procpool
from repro.core.rewriter import ChimeraRewriter
from repro.isa.extensions import PROFILES
from repro.resilience.failures import (
    POOL_BROKEN,
    RESOLVED_QUARANTINED,
    RESOLVED_RETRIED,
    VERIFY_ERROR,
    WORKER_CRASH,
    WORKER_HANG,
)
from repro.resilience.policy import RetryPolicy
from repro.verify.admission import AdmissionGate, verify_binary
from repro.workloads.spec_profiles import PROFILES as WORKLOADS
from repro.workloads.synthetic import SyntheticBinary

RV64GC = PROFILES["rv64gc"]

#: Retries still happen, but the backoff sleeps are ~1ms.
FAST_RETRIES = RetryPolicy(max_attempts=3, base_backoff=1, multiplier=1,
                           max_backoff=1)


@pytest.fixture(autouse=True)
def _fixed_seed(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_SEED", "20260806")


@pytest.fixture(scope="module")
def pair():
    original = SyntheticBinary(WORKLOADS["gcc_r"], scale=256).build()
    rewritten = ChimeraRewriter().rewrite(original.clone(), RV64GC).binary
    return original, rewritten


def _verify(pair, **kwargs):
    original, rewritten = pair
    kwargs.setdefault("oracle_trials", 1)
    return verify_binary(original.clone(), rewritten.clone(), **kwargs)


class TestFaultFreeIdentity:
    def test_process_matches_serial_ledger(self, pair):
        serial = _verify(pair, executor="serial")
        pooled = _verify(pair, executor="process", jobs=2)
        assert pooled.as_dict() == serial.as_dict()
        assert not pooled.faults

    def test_rejects_unknown_executor(self, pair):
        with pytest.raises(ValueError, match="executor"):
            _verify(pair, executor="carrier-pigeon")


class TestInjectedErrors:
    def test_transient_error_is_retried(self, pair):
        clean = _verify(pair, executor="process", jobs=2)
        injector = PipelineFailureInjector(error={0: 1})
        report = _verify(pair, executor="process", jobs=2,
                         injector=injector, retry_policy=FAST_RETRIES)
        assert [r.as_dict() for r in report.regions] == \
            [r.as_dict() for r in clean.regions]
        fault, = report.faults
        assert (fault.fault, fault.resolution) == (VERIFY_ERROR,
                                                   RESOLVED_RETRIED)
        assert fault.start == report.regions[0].start
        assert "Traceback" not in fault.detail

    def test_persistent_error_quarantines_with_verdict(self, pair):
        injector = PipelineFailureInjector(error={0: 99})
        report = _verify(pair, executor="process", jobs=2,
                         injector=injector, retry_policy=FAST_RETRIES)
        verdict = report.regions[0]
        assert not verdict.admitted
        assert any(c.name == "isolation" and not c.passed
                   for c in verdict.checks)
        region_faults = [f for f in report.faults
                         if f.start == verdict.start]
        assert len(region_faults) == FAST_RETRIES.max_attempts
        final = max(region_faults, key=lambda f: f.attempt)
        assert final.resolution == RESOLVED_QUARANTINED
        assert all(f.resolution == RESOLVED_RETRIED
                   for f in region_faults if f is not final)
        # Every other region still carries a fresh verdict.
        assert all(r.admitted for r in report.regions[1:])

    def test_serial_executor_retries_errors_too(self, pair):
        injector = PipelineFailureInjector(error={0: 1})
        report = _verify(pair, executor="serial", injector=injector,
                         retry_policy=FAST_RETRIES)
        assert report.ok
        fault, = report.faults
        assert (fault.fault, fault.resolution) == (VERIFY_ERROR,
                                                   RESOLVED_RETRIED)


class TestCrashAndHangIsolation:
    def test_worker_kill_is_attributed_and_retried(self, pair):
        clean = _verify(pair, executor="process", jobs=2)
        injector = PipelineFailureInjector(kill={0: 1})
        report = _verify(pair, executor="process", jobs=2,
                         injector=injector, retry_policy=FAST_RETRIES)
        assert [r.as_dict() for r in report.regions] == \
            [r.as_dict() for r in clean.regions]
        fault, = report.faults
        assert (fault.fault, fault.resolution) == (WORKER_CRASH,
                                                   RESOLVED_RETRIED)
        assert fault.start == report.regions[0].start

    def test_hung_worker_is_killed_by_watchdog(self, pair):
        injector = PipelineFailureInjector(hang={0: 1}, hang_seconds=30.0)
        report = _verify(pair, executor="process", jobs=2,
                         injector=injector, region_timeout=0.5,
                         retry_policy=FAST_RETRIES)
        assert report.ok
        fault, = report.faults
        assert (fault.fault, fault.resolution) == (WORKER_HANG,
                                                   RESOLVED_RETRIED)


class TestSeedHoisting:
    def test_mid_run_seed_change_cannot_drift_workers(self, pair, monkeypatch):
        original, rewritten = pair
        gate = AdmissionGate(original.clone(), rewritten.clone(),
                             oracle_trials=1, jobs=2, executor="process")
        assert gate.seed == 20260806
        # The environment flips after the gate resolved its seed; the
        # work-items carry the resolved value, so process workers must
        # not pick the new one up.
        monkeypatch.setenv("REPRO_FUZZ_SEED", "999")
        report = gate.verify()
        baseline = _verify(pair, executor="serial", seed=20260806)
        assert report.seed == 20260806
        assert report.as_dict() == baseline.as_dict()


class TestPoolBrokenFallback:
    def test_stillborn_pool_falls_back_to_serial(self, pair, monkeypatch):
        # Every spawned worker dies before its ready handshake; the pool
        # gives up and the gate finishes the regions serially, recording
        # the collapse as a single pipeline-scoped fault.
        monkeypatch.setattr(procpool, "_worker_main",
                            lambda *a, **k: os._exit(1))
        clean = _verify(pair, executor="serial")
        report = _verify(pair, executor="process", jobs=2)
        assert [r.as_dict() for r in report.regions] == \
            [r.as_dict() for r in clean.regions]
        pool_faults = [f for f in report.faults if f.fault == POOL_BROKEN]
        assert len(pool_faults) == 1
        assert pool_faults[0].region_kind == "pipeline"


class TestWorkItems:
    def test_retried_increments_attempt_only(self):
        item = procpool.RegionWorkItem(index=3, start=0x1000, end=0x1010,
                                       kind="smile", seed=7)
        again = item.retried()
        assert (again.index, again.start, again.seed) == (3, 0x1000, 7)
        assert (item.attempt, again.attempt) == (1, 2)
