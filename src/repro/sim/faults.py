"""Fault taxonomy for the simulated machine.

The paper's correctness argument (§3.2, §5.1) distinguishes
*deterministic* faults — which immediately halt the erroneous execution
and carry enough context to recover — from non-deterministic misbehavior
(executing unintended instructions).  In the simulator every fault is a
Python exception carrying the faulting pc and, for memory faults, the
offending address and access kind; the simulated kernel catches them.
"""

from __future__ import annotations

from typing import Optional


class SimFault(Exception):
    """Base class for all simulated architectural events."""

    def __init__(self, message: str, pc: Optional[int] = None):
        super().__init__(message)
        self.pc = pc


class SegmentationFault(SimFault):
    """Access-permission violation (the simulated SIGSEGV).

    ``access`` is ``"read"``, ``"write"`` or ``"exec"``.  SMILE's P1 case
    manifests as ``access="exec"`` at a data-segment address.
    """

    def __init__(self, addr: int, access: str, pc: Optional[int] = None):
        super().__init__(f"segmentation fault: {access} at {addr:#x}", pc)
        self.addr = addr
        self.access = access


class IllegalInstructionFault(SimFault):
    """Illegal/reserved/unsupported instruction (the simulated SIGILL).

    ``kind`` values:

    * ``"long-prefix"`` — reserved >=48-bit encoding prefix (SMILE P2);
    * ``"reserved-compressed"`` — reserved RVC encoding (SMILE P3);
    * ``"unknown"`` — not a known encoding;
    * ``"unsupported-extension"`` — valid encoding, but this core lacks
      the extension (the FAM trigger and Chimera's runtime-rewriting
      trigger for unrecognized instructions).
    """

    def __init__(self, pc: int, kind: str, detail: str = ""):
        super().__init__(f"illegal instruction at {pc:#x} ({kind}) {detail}".rstrip(), pc)
        self.kind = kind


class EcallTrap(SimFault):
    """Environment call; the kernel services it as a syscall."""

    def __init__(self, pc: int):
        super().__init__(f"ecall at {pc:#x}", pc)


class BreakpointTrap(SimFault):
    """``ebreak``/``c.ebreak``; trap-based trampolines ride on this."""

    def __init__(self, pc: int, compressed: bool = False):
        super().__init__(f"breakpoint at {pc:#x}", pc)
        self.compressed = compressed


class ExitRequest(SimFault):
    """Raised by the exit syscall to terminate the process cleanly."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class SimulationLimitExceeded(SimFault):
    """The instruction budget ran out; guards against runaway programs."""

    def __init__(self, limit: int):
        super().__init__(f"instruction limit {limit} exceeded")
        self.limit = limit
