"""Shared reassembly engine for the regeneration-style baselines.

Takes the recursive-scan instruction stream of a binary and re-emits it
at a new base address with source instructions replaced by translated
sequences.  Because translation inflates code, every instruction moves;
the engine therefore:

* retargets direct branches/jumps through the old->new address map,
  rewriting a conditional branch whose displacement no longer fits into
  an inverted branch + ``jal`` pair (size changes iterate to fixpoint);
* recomputes ``auipc``+``addi`` pc-relative pairs (the ``la`` idiom) for
  their new pc;
* leaves indirect-jump *targets* alone — healing those is exactly the
  part Safer/ARMore handle with runtime mechanisms, and each baseline
  brings its own strategy.

This is the "shifting corrupts control flow" problem of Fig. 1 made
concrete: the map produced here is what the baselines' runtime
mechanisms consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.scan import ScanResult
from repro.core.translate import TranslationError, Translator
from repro.isa.assembler import Assembler
from repro.isa.encoding import encode
from repro.isa.instructions import Instruction

#: Branch condition inversions for the range-overflow rewrite.
_INVERT = {"beq": "bne", "bne": "beq", "blt": "bge", "bge": "blt",
           "bltu": "bgeu", "bgeu": "bltu"}

_MAX_PASSES = 8


class ReassemblyError(ValueError):
    """The stream cannot be reassembled (unsupported construct)."""


@dataclass
class _Item:
    """One original instruction and its relocated expansion."""

    orig: Instruction
    kind: str                 # "plain" | "source" | "branch" | "jal" | "auipc-pair"
    size: int = 0
    new_addr: int = 0
    text: Optional[str] = None     # pre-rendered body for "source"
    pair_partner: Optional[int] = None  # index of the addi of an auipc pair
    long_form: bool = False        # branch rewritten as inverted+jal


@dataclass
class ReassembledCode:
    """Output: bytes at *base* plus the old->new instruction-address map."""

    base: int
    code: bytes
    addr_map: dict[int, int]
    #: jal retargets that exceeded range and fell back to a trap veneer.
    trap_veneers: dict[int, int]
    #: (new address, original instruction) of every indirect jump.
    indirect_jump_sites: list[tuple[int, Instruction]]


def reassemble(
    scan: ScanResult,
    translator: Translator,
    base: int,
    *,
    needs_translation,
    call_ra_style: str = "new",
    pattern_sites: list | None = None,
) -> ReassembledCode:
    """Re-emit the scanned instruction stream at *base*.

    ``needs_translation(instr)`` selects source instructions; their
    bodies come from *translator* (which may be in empty mode).

    ``call_ra_style`` controls what return address calls leave in ``ra``:
    ``"new"`` (Safer-style regeneration: the relocated return address) or
    ``"original"`` (ARMore-style: the original-layout return address, so
    returns bounce through the original section's trampolines).
    """
    if call_ra_style not in ("new", "original"):
        raise ValueError(f"unknown call_ra_style {call_ra_style!r}")
    addrs = scan.sorted_addrs()
    items: list[_Item] = []
    index_of: dict[int, int] = {}
    for i, addr in enumerate(addrs):
        instr = scan.instructions[addr]
        index_of[addr] = i
        items.append(_Item(instr, "plain"))

    # Multi-instruction pattern replacements (loop-level translation):
    # the head item carries the replacement text, members are elided and
    # their addresses map to the replacement start.
    pattern_heads: dict[int, object] = {}
    pattern_members: set[int] = set()
    for site in pattern_sites or ():
        pattern_heads[site.start] = site
        pattern_members.update(i.addr for i in site.instructions[1:])

    # Classify.
    for i, item in enumerate(items):
        instr = item.orig
        if item.kind == "pair-tail":
            continue
        if instr.addr in pattern_heads:
            site = pattern_heads[instr.addr]
            item.kind = "source"
            item.text = site.replacement_asm
            item.size = len(Assembler(base=0).assemble(site.replacement_asm).code)
            continue
        if instr.addr in pattern_members:
            item.kind = "pattern-member"
            item.size = 0
            continue
        if needs_translation(instr):
            item.kind = "source"
            body, _ = translator.translate(instr)
            item.text = body
            item.size = len(Assembler(base=0).assemble(body).code)
        elif instr.is_branch():
            item.kind = "branch"
            item.size = 4
        elif instr.mnemonic in ("jal", "c.j"):
            item.kind = "jal"
            item.size = 4  # c.j is re-emitted as jal for range headroom
            if call_ra_style == "original" and instr.mnemonic == "jal" and instr.rd == 1:
                item.size = 12  # lui ra + addiw ra + jal x0
        elif (
            call_ra_style == "original"
            and instr.mnemonic in ("jalr", "c.jalr")
            and (instr.rd == 1 or instr.mnemonic == "c.jalr")
            and instr.rs1 != 1
        ):
            item.kind = "jalr-orig-ra"
            item.size = 12  # lui ra + addiw ra + jalr x0
        elif instr.mnemonic == "auipc":
            nxt = items[i + 1] if i + 1 < len(items) else None
            if (
                nxt is not None
                and nxt.orig.mnemonic in ("addi", "ld", "lw", "sd", "sw")
                and nxt.orig.rs1 == instr.rd
                and nxt.orig.addr == instr.addr + instr.length
            ):
                item.kind = "auipc-pair"
                item.pair_partner = i + 1
                item.size = 4
                items[i + 1].kind = "pair-tail"
                items[i + 1].size = 4
            else:
                raise ReassemblyError(f"unpaired auipc at {instr.addr:#x}")
        else:
            item.size = instr.length

    # Iterate layout until branch forms stabilize.
    for _ in range(_MAX_PASSES):
        cursor = base
        for item in items:
            item.new_addr = cursor
            cursor += item.size + (4 if item.long_form else 0)
        changed = False
        for item in items:
            if item.kind == "branch" and not item.long_form:
                target = item.orig.target()
                if target in index_of:
                    new_target = items[index_of[target]].new_addr
                    disp = new_target - item.new_addr
                    if not -4096 <= disp < 4096:
                        item.long_form = True
                        changed = True
        if not changed:
            break
    else:  # pragma: no cover - pathological layouts
        raise ReassemblyError("branch layout did not converge")

    addr_map = {item.orig.addr: item.new_addr for item in items}
    # Elided pattern members resolve to their replacement's head — the
    # restart-head policy (see repro.core.downgrade_loops).
    for site in pattern_sites or ():
        head_new = addr_map[site.start]
        for member in site.instructions[1:]:
            addr_map[member.addr] = head_new

    # Emit.
    out = bytearray()
    trap_veneers: dict[int, int] = {}
    indirect_sites: list[int] = []
    for item in items:
        instr = item.orig
        new_addr = item.new_addr
        if item.kind in ("pair-tail", "pattern-member"):
            continue  # emitted with its auipc / replaced by the pattern head
        assert len(out) == new_addr - base, "layout/emission drift"
        if item.kind == "source":
            program = Assembler(base=new_addr).assemble(item.text)
            out.extend(program.code)
        elif item.kind == "branch":
            out.extend(_emit_branch(item, items, index_of, trap_veneers))
        elif item.kind == "jal":
            if item.size == 12:
                out.extend(_emit_orig_ra(instr))
                out.extend(_emit_jal(item, items, index_of, trap_veneers,
                                     pc_bias=8, link=False))
            else:
                out.extend(_emit_jal(item, items, index_of, trap_veneers))
        elif item.kind == "jalr-orig-ra":
            out.extend(_emit_orig_ra(instr))
            tail = Instruction("jalr", rd=0, rs1=instr.rs1,
                               imm=instr.imm or 0)
            indirect_sites.append((new_addr + 8, tail.with_addr(new_addr + 8)))
            out.extend(encode(tail))
        elif item.kind == "auipc-pair":
            partner = items[item.pair_partner]
            # Recompute the pc-relative pair for the new pc; the absolute
            # target (data or code) is what the original pair produced.
            abs_target = instr.addr + _sext_hi(instr.imm) + _lo_of(partner.orig)
            offset = abs_target - new_addr
            lo = _sext12(offset & 0xFFF)
            hi = ((offset - lo) >> 12) & 0xFFFFF
            out.extend(encode(Instruction("auipc", rd=instr.rd, imm=hi)))
            fixed = partner.orig.copy()
            fixed.imm = lo if partner.orig.mnemonic == "addi" else lo
            # For loads/stores the low part rides in the memory offset.
            fixed.addr = None
            out.extend(encode(fixed))
        else:
            if instr.is_indirect_jump():
                indirect_sites.append((new_addr, instr))
            clone = instr.copy()
            clone.addr = None
            out.extend(encode(clone))
    return ReassembledCode(base, bytes(out), addr_map, trap_veneers, indirect_sites)


def _emit_branch(item: _Item, items, index_of, trap_veneers) -> bytes:
    instr = item.orig
    target = instr.target()
    new_target = items[index_of[target]].new_addr if target in index_of else None
    mnem = instr.mnemonic
    rs1 = instr.rs1 if instr.rs1 is not None else 0
    rs2 = instr.rs2 if instr.rs2 is not None else 0
    if mnem in ("c.beqz", "c.bnez"):
        mnem = "beq" if mnem == "c.beqz" else "bne"
        rs2 = 0
    if new_target is None:
        # Target outside the recovered region: deterministic trap veneer.
        data = encode(Instruction(_INVERT[mnem], rs1=rs1, rs2=rs2, imm=8))
        trap_veneers[item.new_addr + 4] = target
        return data + encode(Instruction("ebreak"))
    if not item.long_form:
        disp = new_target - item.new_addr
        return encode(Instruction(mnem, rs1=rs1, rs2=rs2, imm=disp))
    # inverted branch over a jal
    data = encode(Instruction(_INVERT[mnem], rs1=rs1, rs2=rs2, imm=8))
    disp = new_target - (item.new_addr + 4)
    if -(1 << 20) <= disp < (1 << 20):
        data += encode(Instruction("jal", rd=0, imm=disp))
    else:
        trap_veneers[item.new_addr + 4] = new_target
        data += encode(Instruction("ebreak"))
    return data


def _emit_jal(item: _Item, items, index_of, trap_veneers, *, pc_bias: int = 0, link: bool = True) -> bytes:
    instr = item.orig
    target = instr.target()
    rd = (instr.rd if instr.mnemonic == "jal" else 0) if link else 0
    pc = item.new_addr + pc_bias
    new_target = items[index_of[target]].new_addr if target in index_of else None
    if new_target is None:
        trap_veneers[pc] = target
        return encode(Instruction("ebreak"))
    disp = new_target - pc
    if -(1 << 20) <= disp < (1 << 20):
        return encode(Instruction("jal", rd=rd, imm=disp))
    trap_veneers[pc] = new_target
    return encode(Instruction("ebreak"))


def _emit_orig_ra(instr: Instruction) -> bytes:
    """``lui ra, hi ; addiw ra, ra, lo`` materializing the ORIGINAL return
    address (ARMore's address-taken-compatible call convention)."""
    ret = instr.addr + instr.length
    lo = ret & 0xFFF
    if lo >= 0x800:
        lo -= 0x1000
    hi = ((ret - lo) >> 12) & 0xFFFFF
    return encode(Instruction("lui", rd=1, imm=hi)) + encode(
        Instruction("addiw", rd=1, rs1=1, imm=lo)
    )


def _sext_hi(imm20: int) -> int:
    value = (imm20 & 0xFFFFF) << 12
    return value - (1 << 32) if value & (1 << 31) else value


def _lo_of(instr: Instruction) -> int:
    return instr.imm or 0


def _sext12(value: int) -> int:
    return value - 4096 if value & 0x800 else value
