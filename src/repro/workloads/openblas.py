"""The §6.4 real-world application experiment: OpenBLAS kernels.

Fig. 14 measures dgemm/sgemm/dgemv/sgemv under FAM-Ext, FAM-Base, MELF
and Chimera across thread counts, reporting acceleration ratios relative
to FAM-Ext, plus an sgemm scalability sweep on the 64-core SG2042.

Reproduction: the double-precision kernels are our int64 matmul/gemv
workloads (the paper's BLAS uses FP; integer kernels exercise the same
vector/strided-compute shape and the experiment only compares *systems*
on identical kernels — see DESIGN.md).  Per-(system, core) kernel costs
are measured through real rewriting + simulation; single-precision
variants halve the element width, doubling vector throughput (lanes per
VLEN) while leaving scalar cost nearly unchanged — applied as an
element-width factor on the measured vector-path costs.

Threads decompose the workload into many kernel-sized tasks processed
by the work-stealing scheduler over the thread-confined core set, with a
synchronization cost per task that grows linearly with the thread count
(the contention the paper blames for sgemm's 60.2% speedup drop from 16
to 64 threads).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.scheduler import SystemModel, WorkStealingScheduler, mixed_taskset
from repro.harness import run_chimera, run_native
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.workloads.programs import GemvWorkload, MatMulWorkload

SYSTEMS = ("fam_ext", "fam_base", "melf", "chimera")

#: Tasks one full Fig. 14 workload decomposes into.
TASKS_PER_RUN = 256

#: Per-task synchronization cycles per active thread (barrier model).
SYNC_GEMM = 14.0   # matrix-matrix: heavy sharing
SYNC_GEMV = 2.0    # matrix-vector: near-embarrassing parallelism


@dataclass(frozen=True)
class KernelCosts:
    """Measured per-task cycles for one BLAS kernel."""

    name: str
    native_ext: int       # compiled-with-RVV kernel on an extension core
    native_scalar: int    # base-ISA kernel on any core
    chimera_ext: int      # Chimera-rewritten (for ext cores)
    chimera_base: int     # Chimera-downgraded (for base cores)
    sync_per_thread: float


@lru_cache(maxsize=8)
def measure_kernel(kernel: str, arch: ArchParams = DEFAULT_ARCH) -> KernelCosts:
    """Measure one kernel's per-(system, core) costs via real rewriting."""
    if kernel in ("dgemm", "sgemm"):
        workload = MatMulWorkload(n=12)
        sync = SYNC_GEMM
    elif kernel in ("dgemv", "sgemv"):
        workload = GemvWorkload(n=16)
        sync = SYNC_GEMV
    else:
        raise ValueError(f"unknown kernel {kernel!r}")
    ext_bin = workload.build("ext")
    base_bin = workload.build("base")
    native_ext = run_native(ext_bin, RV64GCV, arch=arch).cycles
    native_scalar = run_native(base_bin, RV64GC, arch=arch).cycles
    chimera_ext = run_chimera(ext_bin, RV64GCV, arch=arch).cycles
    chimera_base = run_chimera(ext_bin, RV64GC, arch=arch).cycles
    if kernel.startswith("s"):
        # 32-bit elements: double the lanes per VLEN on the vector path.
        native_ext = max(native_scalar // 4, round(native_ext * 0.62))
        chimera_ext = max(1, round(chimera_ext * 0.62))
    return KernelCosts(kernel, native_ext, native_scalar, chimera_ext, chimera_base, sync)


@dataclass
class Fig14Row:
    """One point of Fig. 14: a (kernel, system, threads) cell."""

    kernel: str
    system: str
    threads: int
    makespan: int
    acceleration_vs_fam_ext: float


def _core_split(threads: int, n_base: int, n_ext: int) -> tuple[int, int]:
    """Thread-confined core set: split evenly, extension cores first on ties."""
    ext = min(n_ext, (threads + 1) // 2)
    base = min(n_base, threads - ext)
    return base, ext


def _model(system: str, costs: KernelCosts, threads: int,
           sync_scale: float = 1.0) -> SystemModel:
    sync = int(costs.sync_per_thread * threads * sync_scale)
    if system == "fam_ext":
        cells = {("ext", True): costs.native_ext + sync, ("ext", False): None,
                 ("base", False): 0, ("base", True): 0}
        return SystemModel(system, cells, frozenset({("ext", True)}),
                           migrate_on_unsupported=True, detect_cycles=400)
    if system == "fam_base":
        c = costs.native_scalar + sync
        cells = {("ext", True): c, ("ext", False): c,
                 ("base", False): 0, ("base", True): 0}
        return SystemModel(system, cells, frozenset())
    if system == "melf":
        cells = {("ext", True): costs.native_ext + sync,
                 ("ext", False): costs.native_scalar + sync,
                 ("base", False): 0, ("base", True): 0}
        return SystemModel(system, cells, frozenset({("ext", True)}))
    if system == "chimera":
        cells = {("ext", True): costs.chimera_ext + sync,
                 ("ext", False): costs.chimera_base + sync,
                 ("base", False): 0, ("base", True): 0}
        return SystemModel(system, cells, frozenset({("ext", True)}))
    raise ValueError(f"unknown system {system!r}")


def run_fig14(
    kernel: str,
    thread_counts: tuple[int, ...] = (2, 4, 6, 8),
    *,
    n_base: int = 4,
    n_ext: int = 4,
    arch: ArchParams = DEFAULT_ARCH,
    tasks_per_run: int = TASKS_PER_RUN,
    sync_scale: float = 1.0,
) -> list[Fig14Row]:
    """Regenerate one Fig. 14 subplot (a-d, or e with 64-core params)."""
    costs = measure_kernel(kernel, arch)
    rows: list[Fig14Row] = []
    for threads in thread_counts:
        base, ext = _core_split(threads, n_base, n_ext)
        scheduler = WorkStealingScheduler(base, ext, arch)
        tasks = mixed_taskset(tasks_per_run, 1.0)  # all kernel tasks
        makespans: dict[str, int] = {}
        for system in SYSTEMS:
            result = scheduler.run(tasks, _model(system, costs, threads, sync_scale))
            makespans[system] = result.makespan
        ref = makespans["fam_ext"]
        for system in SYSTEMS:
            rows.append(Fig14Row(
                kernel=kernel,
                system=system,
                threads=threads,
                makespan=makespans[system],
                acceleration_vs_fam_ext=ref / max(1, makespans[system]),
            ))
    return rows


def run_fig14_scalability(
    thread_counts: tuple[int, ...] = (16, 24, 32, 40, 48, 56, 64),
    *,
    arch: ArchParams = DEFAULT_ARCH,
) -> list[Fig14Row]:
    """Fig. 14e: sgemm on the SG2042-like 32+32-core machine.

    Cross-cluster synchronization on the 64-core part is far heavier
    than on the 8-core SoC (the paper observes a 60.2% speedup drop from
    16 to 64 threads); ``sync_scale`` models that.
    """
    return run_fig14("sgemm", thread_counts, n_base=32, n_ext=32, arch=arch,
                     sync_scale=10.0)
