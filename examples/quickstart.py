#!/usr/bin/env python3
"""Quickstart: rewrite a vectorized binary so it runs on a base core.

Builds a small RV64GCV program (vector add over an array), runs it
natively on an extension core, then uses Chimera's CHBP to downgrade it
for an RV64GC core — and shows that the rewritten binary computes the
same result, with the fault-handling machinery standing by for
erroneous executions.

Run:  python examples/quickstart.py
"""

from repro import (
    ChimeraRewriter,
    ChimeraRuntime,
    Core,
    Kernel,
    ProgramBuilder,
    RV64GC,
    RV64GCV,
    make_process,
)


def build_program():
    """A tiny 'application binary': z[i] = x[i] + y[i] with RVV."""
    b = ProgramBuilder("quickstart")
    b.add_words("x", list(range(1, 17)))
    b.add_words("y", list(range(100, 116)))
    b.add_words("z", [0] * 16)
    b.set_text("""
_start:
    li a0, {x}
    li a1, {y}
    li a2, {z}
    li a3, 16
loop:
    vsetvli t0, a3, e64          # strip-mining: vl = min(remaining, VLMAX)
    vle64.v v1, (a0)
    vle64.v v2, (a1)
    vadd.vv v3, v1, v2
    vse64.v v3, (a2)
    slli t1, t0, 3
    add a0, a0, t1
    add a1, a1, t1
    add a2, a2, t1
    sub a3, a3, t0
    bnez a3, loop
    li a7, 93                    # exit(0)
    li a0, 0
    ecall
""")
    return b.build()


def read_z(binary, process):
    z = binary.symbol_addr("z")
    return [process.space.read_u64(z + 8 * i) for i in range(16)]


def main():
    binary = build_program()
    kernel = Kernel()

    # 1. Native run on an extension (RV64GCV) core.
    ext_core = Core(0, RV64GCV)
    proc = make_process(binary)
    result = kernel.run(proc, ext_core)
    print(f"native on {ext_core}: exit={result.exit_code} "
          f"cycles={result.cycles} instret={result.instret}")
    expected = read_z(binary, proc)
    print(f"  z[0..3] = {expected[:4]}")

    # 2. The same binary faults on a base core (no vector extension).
    base_core = Core(1, RV64GC)
    plain = kernel.run(make_process(binary), base_core)
    print(f"unmodified on {base_core}: fault = {plain.fault}")

    # 3. Rewrite with CHBP: vector code is translated, SMILE trampolines
    #    route control into the target blocks.
    rewriter = ChimeraRewriter()
    rewrite = rewriter.rewrite(binary, RV64GC)
    stats = rewrite.stats
    print(f"CHBP: {stats.trampolines} SMILE trampolines, "
          f"{stats.table_entries} fault-table entries, "
          f"{stats.trap_fallbacks} trap fallbacks")

    # 4. Run the rewritten binary on the base core, with Chimera's
    #    runtime installed in the (simulated) kernel.
    run_kernel = Kernel()
    runtime = ChimeraRuntime(rewrite.binary, rewriter=rewriter, original=binary)
    runtime.install(run_kernel)
    proc2 = make_process(rewrite.binary)
    result2 = run_kernel.run(proc2, base_core)
    got = read_z(binary, proc2)
    print(f"rewritten on {base_core}: exit={result2.exit_code} "
          f"cycles={result2.cycles}")
    print(f"  z[0..3] = {got[:4]}")
    print(f"  results match: {got == expected}")
    print(f"  deterministic faults handled: {runtime.stats.deterministic_faults} "
          f"(normal executions pay only the trampoline jumps)")


if __name__ == "__main__":
    main()
