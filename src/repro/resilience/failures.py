"""Core-failure injection: the execution-substrate half of chaos.

PR 1's chaos harness attacks the *rewriting* (trampoline bytes, runtime
tables).  This module attacks the *substrate* the rewritten binary runs
on: cores die or flake mid-task (including mid-vector-loop on an
extension core), checkpointed migrations get dropped in flight, and
checkpoints get corrupted.  Every injected failure must surface as a
structured fault (:class:`~repro.sim.faults.CoreFault`,
:class:`~repro.sim.faults.MigrationLostFault`,
:class:`~repro.sim.faults.CheckpointCorruptFault`) — never a raw Python
exception — and the schedulers must keep forward progress.

:class:`CoreFailureInjector` drives the measured execution path
(real binaries in the CPU simulator); :class:`DesFailurePlan` drives the
discrete-event scheduler, where "mid-task" is a fraction of the task's
modeled cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.resilience.seeds import resolve_seed

# -- fault-isolated verification pipeline taxonomy ---------------------------

#: A verification worker process died mid-region (segfault-equivalent
#: raise deep in the oracle, OOM-style kill, BrokenProcessPool).
WORKER_CRASH = "worker-crash"
#: The wall-clock watchdog killed a worker that exceeded the per-region
#: deadline (hung CFG walk, stuck oracle).
WORKER_HANG = "worker-hang"
#: A structured exception escaped the per-region checks in-process
#: (serial/thread executors, or caught inside a worker).
VERIFY_ERROR = "verify-error"
#: The process pool itself failed to come up; the pipeline fell back to
#: in-process verification.
POOL_BROKEN = "pool-broken"

REGION_FAULT_KINDS = (WORKER_CRASH, WORKER_HANG, VERIFY_ERROR, POOL_BROKEN)

#: How the pipeline disposed of a region fault.
RESOLVED_RETRIED = "retried"            # a later attempt succeeded
RESOLVED_QUARANTINED = "quarantined"    # retries exhausted, awaiting degrade
RESOLVED_DEGRADED = "degraded-trap"     # re-admitted on the trap-fallback encoding
RESOLVED_EXCLUDED = "excluded"          # refused; recorded in the ledger


@dataclass
class RegionFault:
    """One fault the verification pipeline attributed to one patched
    region — never a raw traceback, never a silent drop.

    ``start``/``end``/``region_kind`` identify the
    :class:`~repro.verify.records.PatchRecord`; ``fault`` is one of
    :data:`REGION_FAULT_KINDS`; ``attempt`` is the 1-based dispatch that
    faulted; ``resolution`` records what the pipeline did about it.
    """

    start: int
    end: int
    region_kind: str
    fault: str
    attempt: int
    detail: str = ""
    worker: Optional[int] = None
    resolution: str = RESOLVED_RETRIED

    def __post_init__(self) -> None:
        if self.fault not in REGION_FAULT_KINDS:
            raise ValueError(
                f"unknown region fault {self.fault!r}; choose from {REGION_FAULT_KINDS}")

    def __str__(self) -> str:
        where = f"{self.start:#x}..{self.end:#x} [{self.region_kind}]"
        return (f"{self.fault} at {where} attempt {self.attempt}"
                f" -> {self.resolution}" + (f": {self.detail}" if self.detail else ""))

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "region_kind": self.region_kind,
            "fault": self.fault,
            "attempt": self.attempt,
            "detail": self.detail,
            "worker": self.worker,
            "resolution": self.resolution,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegionFault":
        return cls(
            start=data["start"],
            end=data["end"],
            region_kind=data["region_kind"],
            fault=data["fault"],
            attempt=data["attempt"],
            detail=data.get("detail", ""),
            worker=data.get("worker"),
            resolution=data.get("resolution", RESOLVED_RETRIED),
        )


# -- batch-service job taxonomy ----------------------------------------------

#: The submit message itself was unusable: unknown workload, unreadable
#: or malformed binary file, bad parameters.  Never retried server-side.
JOB_REJECTED = "job-rejected"
#: The rewrite+verify pipeline raised for this job; the server caught
#: it at the job boundary (the process pool already absorbed any worker
#: crash — this is the driver itself failing), sanitized it to one
#: line, and stayed up.
JOB_CRASH = "job-crash"
#: The job's release key crossed the failure budget: the server refuses
#: it on admission so one poisoned binary can never monopolize the
#: fleet's workers.  A cache wipe or server restart clears the memo.
JOB_POISONED = "job-poisoned"
#: The server shed the job at admission because both the in-flight
#: budget (``--max-inflight``) and the wait queue (``--max-queue``)
#: were full.  Carries ``retry_after_ms`` — a load-derived hint for
#: when the client should try again.  Transient by definition.
JOB_OVERLOADED = "job-overloaded"
#: The job's end-to-end ``deadline_ms`` expired — while queued for an
#: admission slot, while coalesced behind another run of the same key,
#: or deep inside the verification pipeline (the deadline is threaded
#: down into the region watchdog loop).  Never counts toward the
#: poison budget: it signals the *client's* time budget, not the
#: binary's health.
JOB_DEADLINE = "job-deadline-exceeded"

JOB_FAULT_KINDS = (JOB_REJECTED, JOB_CRASH, JOB_POISONED, JOB_OVERLOADED,
                   JOB_DEADLINE)


class DeadlineExceededError(RuntimeError):
    """A job's end-to-end deadline expired inside the pipeline.

    Raised by :func:`repro.core.pipeline.rewrite_and_verify`, the
    :class:`~repro.verify.admission.AdmissionGate` fan-out loops, and
    the :class:`~repro.core.procpool.FaultIsolatedPool` scheduling loop
    when ``time.monotonic()`` passes the job's absolute deadline.  The
    batch server converts it into a structured ``job-deadline-exceeded``
    :class:`JobFault` — never a raw traceback.  Any run journal written
    so far is kept, so a retried job resumes instead of restarting.
    """


@dataclass
class JobFault:
    """One structured failure the batch service attributed to one job.

    Mirrors :class:`RegionFault` one level up: the unit is a whole
    submitted binary, the consumer is a fleet client, and the contract
    is the same — never a raw traceback, never a silent drop.  ``key``
    is the release key when it was computed (None for jobs rejected
    before resolution); ``failures`` counts how many runs of this key
    have crashed (drives the poison quarantine).
    """

    binary: str
    fault: str
    detail: str = ""
    key: Optional[str] = None
    failures: int = 0
    quarantined: bool = False
    #: For ``job-overloaded`` sheds: how long (milliseconds) the client
    #: should wait before retrying, derived from the server's observed
    #: job latency and current backlog.  None for every other kind.
    retry_after_ms: Optional[int] = None

    def __post_init__(self) -> None:
        if self.fault not in JOB_FAULT_KINDS:
            raise ValueError(
                f"unknown job fault {self.fault!r}; choose from {JOB_FAULT_KINDS}")

    def __str__(self) -> str:
        tail = f": {self.detail}" if self.detail else ""
        quarantine = " [quarantined]" if self.quarantined else ""
        return f"{self.fault} for {self.binary}{quarantine}{tail}"

    def as_dict(self) -> dict:
        data = {
            "binary": self.binary,
            "fault": self.fault,
            "detail": self.detail,
            "key": self.key,
            "failures": self.failures,
            "quarantined": self.quarantined,
        }
        if self.retry_after_ms is not None:
            data["retry_after_ms"] = self.retry_after_ms
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobFault":
        return cls(
            binary=data["binary"],
            fault=data["fault"],
            detail=data.get("detail", ""),
            key=data.get("key"),
            failures=data.get("failures", 0),
            quarantined=data.get("quarantined", False),
            retry_after_ms=data.get("retry_after_ms"),
        )


KILL_CORE = "kill-core"
FLAKE_CORE = "flake-core"
DROP_MIGRATION = "drop-migration"
CORRUPT_CHECKPOINT = "corrupt-checkpoint"

EVENT_KINDS = (KILL_CORE, FLAKE_CORE, DROP_MIGRATION, CORRUPT_CHECKPOINT)


@dataclass
class FailureEvent:
    """One scripted failure.

    ``core_id``/``task_id``/``task_kind`` narrow when the event fires
    (None = any).  ``after_instructions`` places a kill/flake at a
    precise instruction boundary inside the victim task — small values
    land inside an extension task's first vector loop.  ``count`` lets a
    flake repeat.  ``None`` for ``after_instructions`` picks a seeded
    random depth at arm time.
    """

    kind: str
    core_id: Optional[int] = None
    task_id: Optional[int] = None
    task_kind: Optional[str] = None
    after_instructions: Optional[int] = 120
    count: int = 1
    fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r}; choose from {EVENT_KINDS}")

    def matches(self, core_id: Optional[int], task_id: Optional[int],
                task_kind: Optional[str]) -> bool:
        if self.fired >= self.count:
            return False
        if self.core_id is not None and core_id != self.core_id:
            return False
        if self.task_id is not None and task_id != self.task_id:
            return False
        if self.task_kind is not None and task_kind != self.task_kind:
            return False
        return True


class CoreFailureInjector:
    """Scripted, seeded failure injection for the measured schedulers.

    The resilient runner consults it at three points: before executing a
    task on a core (:meth:`plan_execution` arms a mid-task kill/flake),
    right after a checkpoint is taken (:meth:`filter_checkpoint` may
    corrupt it), and when a migrated task is picked up
    (:meth:`migration_dropped` may have lost it in flight).
    """

    def __init__(self, events: tuple[FailureEvent, ...] | list[FailureEvent] = (),
                 *, seed: Optional[int] = None):
        self.seed = resolve_seed(seed)
        self.rng = random.Random(self.seed)
        self.events = list(events)
        #: Human-readable audit trail of everything that fired.
        self.log: list[str] = []

    # -- convenience constructors -------------------------------------------

    @classmethod
    def kill(cls, core_id: int, *, task_kind: Optional[str] = None,
             after_instructions: Optional[int] = 120, seed: Optional[int] = None,
             ) -> "CoreFailureInjector":
        return cls([FailureEvent(KILL_CORE, core_id=core_id, task_kind=task_kind,
                                 after_instructions=after_instructions)], seed=seed)

    @classmethod
    def flake(cls, core_id: int, *, count: int = 2,
              after_instructions: Optional[int] = 120, seed: Optional[int] = None,
              ) -> "CoreFailureInjector":
        return cls([FailureEvent(FLAKE_CORE, core_id=core_id, count=count,
                                 after_instructions=after_instructions)], seed=seed)

    # -- hooks ---------------------------------------------------------------

    def plan_execution(self, core_id: int, task_id: int,
                       task_kind: Optional[str] = None) -> Optional[FailureEvent]:
        """The kill/flake event (if any) armed for this execution."""
        for event in self.events:
            if event.kind in (KILL_CORE, FLAKE_CORE) and event.matches(
                    core_id, task_id, task_kind):
                event.fired += 1
                if event.after_instructions is None:
                    event.after_instructions = self.rng.randrange(40, 400)
                self.log.append(
                    f"{event.kind}: core {core_id}, task {task_id}, "
                    f"+{event.after_instructions} instructions"
                )
                return event
        return None

    def filter_checkpoint(self, checkpoint) -> None:
        """Possibly corrupt a just-taken checkpoint (checksum left stale)."""
        for event in self.events:
            if event.kind == CORRUPT_CHECKPOINT and event.matches(
                    None, checkpoint.task_id, None):
                event.fired += 1
                checkpoint.corrupt(self.rng)
                self.log.append(f"corrupt-checkpoint: task {checkpoint.task_id}")
                return

    def migration_dropped(self, task_id: int) -> bool:
        """True when the in-flight migration of *task_id* was lost."""
        for event in self.events:
            if event.kind == DROP_MIGRATION and event.matches(None, task_id, None):
                event.fired += 1
                self.log.append(f"drop-migration: task {task_id}")
                return True
        return False


# -- discrete-event flavor ---------------------------------------------------


@dataclass
class DesFailure:
    """One failure in discrete-event time: core *core_id* fails when it
    starts a task at or after ``at_time`` (kind "kill" or "flake")."""

    core_id: int
    kind: str = "kill"
    at_time: int = 0
    count: int = 1
    fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "flake"):
            raise ValueError(f"DES failure kind must be kill|flake, not {self.kind!r}")


class DesFailurePlan:
    """Failure schedule for :class:`~repro.core.scheduler.WorkStealingScheduler`.

    ``fail_fraction`` is how much of the victim task's cost the core
    burns before failing (the DES has no instruction counter).
    """

    def __init__(self, failures: list[DesFailure] | tuple[DesFailure, ...],
                 *, fail_fraction: float = 0.5, seed: Optional[int] = None):
        if not 0.0 <= fail_fraction <= 1.0:
            raise ValueError("fail_fraction must be within [0, 1]")
        self.failures = list(failures)
        self.fail_fraction = fail_fraction
        self.seed = resolve_seed(seed)
        self.rng = random.Random(self.seed)

    @classmethod
    def kill_cores(cls, core_ids: list[int] | tuple[int, ...], *, at_time: int = 0,
                   seed: Optional[int] = None) -> "DesFailurePlan":
        return cls([DesFailure(cid, "kill", at_time=at_time) for cid in core_ids],
                   seed=seed)

    def check(self, core_id: int, now: int) -> Optional[str]:
        """Consume and return the failure kind striking *core_id* at *now*."""
        for failure in self.failures:
            if (failure.core_id == core_id and failure.fired < failure.count
                    and now >= failure.at_time):
                failure.fired += 1
                return failure.kind
        return None
