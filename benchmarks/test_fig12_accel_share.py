"""Fig. 12: proportion of extension tasks accelerated by the vector
extension, per system and input version."""

import pytest

from benchmarks.helpers import emit_bench, print_table
from repro.workloads.hetero import SYSTEMS, run_fig11
from repro.telemetry import MetricsRegistry

SHARES = (0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.fixture(scope="module")
def data():
    return {
        version: run_fig11(version, SHARES, n_tasks=1000)
        for version in ("ext", "base")
    }


def test_fig12_regenerate(benchmark, data):
    def report():
        for version, label in (("ext", "Extension Version"), ("base", "Base Version")):
            by = {(r.system, r.ext_share): r for r in data[version]}
            rows = []
            for share in SHARES:
                rows.append([f"{share:.0%}"] + [
                    f"{by[(s, share)].accelerated_share:.0%}" for s in SYSTEMS
                ])
            print_table(f"Fig. 12 — accelerated extension tasks, {label}",
                        ["ext-share"] + list(SYSTEMS), rows)
        registry = MetricsRegistry()
        for version in ("ext", "base"):
            for r in data[version]:
                registry.gauge("bench.accelerated_share", r.accelerated_share,
                               version=version, system=r.system,
                               ext_share=f"{r.ext_share:.1f}")
        emit_bench("fig12_accel_share", registry)
        return data

    benchmark.pedantic(report, rounds=1, iterations=1)


class TestShape:
    def test_fam_always_100pct_on_ext_version(self, data):
        for r in data["ext"]:
            if r.system == "fam" and r.ext_share > 0:
                assert r.accelerated_share == pytest.approx(1.0)

    def test_fam_zero_on_base_version(self, data):
        for r in data["base"]:
            if r.system == "fam" and r.ext_share > 0:
                assert r.accelerated_share == 0.0

    def test_offloading_appears_at_high_share(self, data):
        """MELF/Chimera offload 30-40% of extension tasks to base cores
        when extension tasks saturate the machine (paper's breakdown)."""
        by = {(r.system, r.ext_share): r for r in data["ext"]}
        for system in ("melf", "chimera"):
            share_100 = by[(system, 1.0)].accelerated_share
            print(f"{system}: accelerated at 100% ext = {share_100:.0%} (paper ~60-70%)")
            assert 0.45 <= share_100 <= 0.85

    def test_full_acceleration_at_low_share(self, data):
        by = {(r.system, r.ext_share): r for r in data["ext"]}
        for system in ("melf", "chimera"):
            assert by[(system, 0.2)].accelerated_share > 0.95
