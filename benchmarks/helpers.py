"""Shared machinery for the paper-artifact benchmarks.

The expensive sweep (rewrite + simulate every SPEC/app profile under
every system) runs once per pytest session and is shared by the Fig. 13
and Table 2 benchmarks.  Everything prints the regenerated rows so the
benchmark log doubles as the artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.harness import (
    run_armore,
    run_chimera,
    run_multiverse,
    run_native,
    run_safer,
    run_strawman,
)
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.cost import DEFAULT_ARCH, ArchParams
from repro.workloads.spec_profiles import PROFILES, BenchProfile
from repro.workloads.synthetic import SyntheticBinary

#: Synthetic-binary scale used by all profile-driven benchmarks
#: (DESIGN.md "Scaling note"; jal reach is scaled identically).
SCALE = 128

SYSTEMS = ("chimera", "safer", "multiverse", "armore", "strawman")

_RUNNERS = {
    "chimera": run_chimera,
    "safer": run_safer,
    "multiverse": run_multiverse,
    "armore": run_armore,
    "strawman": run_strawman,
}


def scaled_arch() -> ArchParams:
    return DEFAULT_ARCH.scaled(SCALE)


@dataclass
class ProfileRun:
    """All measurements for one benchmark profile."""

    profile: BenchProfile
    native_cycles: int
    native_instret: int
    cycles: dict[str, int]
    degradation_pct: dict[str, float]
    triggers: dict[str, int]
    rewrite_stats: dict[str, dict]
    ok: dict[str, bool]


@lru_cache(maxsize=None)
def run_profile(name: str) -> ProfileRun:
    """Empty-patch all four systems over one profile's synthetic binary."""
    profile = PROFILES[name]
    arch = scaled_arch()
    binary = SyntheticBinary(profile, scale=SCALE).build()
    native = run_native(binary, RV64GCV, arch=arch)
    assert native.ok, f"{name}: native run failed: {native.result.fault}"

    cycles: dict[str, int] = {}
    degradation: dict[str, float] = {}
    triggers: dict[str, int] = {}
    stats: dict[str, dict] = {}
    ok: dict[str, bool] = {}
    for system in SYSTEMS:
        run = _RUNNERS[system](binary, RV64GC, arch=arch, mode="empty", run_profile=RV64GCV)
        cycles[system] = run.cycles
        degradation[system] = 100.0 * (run.cycles - native.cycles) / native.cycles
        triggers[system] = _trigger_count(system, run)
        stats[system] = run.rewrite_stats or {}
        ok[system] = run.ok
    return ProfileRun(
        profile, native.cycles, native.result.instret,
        cycles, degradation, triggers, stats, ok,
    )


def _trigger_count(system: str, run) -> int:
    """The Table-2 'correctness mechanism trigger' count per system."""
    counters = run.result.counters
    if system == "chimera":
        rt = run.runtime_stats or {}
        return (rt.get("smile_segv_recoveries", 0)
                + rt.get("smile_sigill_recoveries", 0)
                + rt.get("runtime_rewrites", 0))
    if system == "safer":
        return (run.runtime_stats or {}).get("checks", 0)
    if system == "multiverse":
        return (run.runtime_stats or {}).get("lookups", 0)
    if system == "armore":
        return counters.get("armore_redirects", 0)
    return counters.get("traps", 0)  # strawman


#: Where emit_bench writes; override with $REPRO_BENCH_OUT.
BENCH_OUT_ENV = "REPRO_BENCH_OUT"
DEFAULT_BENCH_OUT = "bench-results"


def emit_bench(name: str, registry=None, **gauges) -> str:
    """Write ``BENCH_<name>.json`` through the shared metrics schema.

    Every benchmark module calls this once with its headline numbers —
    either a pre-populated :class:`~repro.telemetry.MetricsRegistry`, or
    keyword gauges ``metric_name={"labels": {...}, "value": v}`` /
    plain ``metric_name=value`` pairs.  The payload is the same
    ``repro.telemetry/metrics/v1`` document ``metrics.json`` uses, so
    one consumer reads both.  Returns the written path.
    """
    import json
    import os

    from repro.telemetry import MetricsRegistry
    from repro.telemetry.export import metrics_payload

    if registry is None:
        registry = MetricsRegistry()
    for metric, spec in gauges.items():
        if isinstance(spec, dict):
            registry.gauge(metric, spec["value"], **spec.get("labels", {}))
        else:
            registry.gauge(metric, spec)
    outdir = os.environ.get(BENCH_OUT_ENV, DEFAULT_BENCH_OUT)
    os.makedirs(outdir, exist_ok=True)
    path = os.path.join(outdir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_payload(registry), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def print_table(title: str, header: list[str], rows: list[list], widths=None) -> None:
    """Render an aligned ASCII table to stdout."""
    cols = len(header)
    widths = widths or [
        max(len(str(header[c])), max((len(str(r[c])) for r in rows), default=0))
        for c in range(cols)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
