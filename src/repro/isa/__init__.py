"""RISC-V ISA model: registers, encodings, assembler, disassembler.

This package implements the architectural substrate the Chimera
reproduction is built on: real RV64I/M/Zba/C-subset/V-subset instruction
encodings (including the compressed-parcel rules and the reserved/illegal
encodings that the SMILE trampoline relies on), an ``Instruction`` IR,
a two-pass textual assembler, and a decoder usable both linearly and
from the recursive-descent scanner in :mod:`repro.analysis`.
"""

from repro.isa.registers import Reg, VReg, ABI_NAMES, reg_name
from repro.isa.instructions import Instruction
from repro.isa.extensions import Extension, IsaProfile, RV64GC, RV64GCV
from repro.isa.encoding import encode
from repro.isa.decoding import decode, IllegalEncodingError
from repro.isa.assembler import Assembler, AssemblyError
from repro.isa.disassembler import disassemble, format_instruction

__all__ = [
    "Reg",
    "VReg",
    "ABI_NAMES",
    "reg_name",
    "Instruction",
    "Extension",
    "IsaProfile",
    "RV64GC",
    "RV64GCV",
    "encode",
    "decode",
    "IllegalEncodingError",
    "Assembler",
    "AssemblyError",
    "disassemble",
    "format_instruction",
]
