"""Multiverse baseline tests."""

import pytest

from repro.baselines.multiverse import LOOKUP_COST, MultiverseRewriter, MultiverseRuntime
from repro.elf.loader import make_process
from repro.harness import run_multiverse, run_native, run_safer
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.machine import Core, Kernel
from repro.workloads.programs import ALL_WORKLOADS, IndirectDispatchWorkload


class TestMultiverse:
    def test_rewrites_and_passes_selfcheck(self):
        binary = IndirectDispatchWorkload().build("ext")
        result = MultiverseRewriter().rewrite(binary, RV64GC)
        runtime = MultiverseRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok
        assert runtime.checks > 0

    def test_requires_multiverse_metadata(self):
        binary = IndirectDispatchWorkload().build("ext")
        with pytest.raises(ValueError):
            MultiverseRuntime(binary)

    def test_slower_than_safer_on_indirect_heavy_code(self):
        """The whole point of Safer: avoiding Multiverse's per-jump
        lookups."""
        binary = IndirectDispatchWorkload(iterations=200).build("ext")
        mv = run_multiverse(binary, RV64GC)
        sf = run_safer(binary, RV64GC)
        assert mv.ok and sf.ok
        assert mv.cycles > sf.cycles

    def test_lookup_count_matches_indirect_executions(self):
        binary = IndirectDispatchWorkload(iterations=100).build("ext")
        mv = run_multiverse(binary, RV64GC)
        # one jalr + one ret per iteration, plus noise
        assert mv.runtime_stats["lookups"] >= 200

    @pytest.mark.parametrize("workload", ["vecadd", "dot", "dispatch"])
    def test_correctness_across_workloads(self, workload):
        binary = ALL_WORKLOADS[workload].build("ext")
        run = run_multiverse(binary, RV64GC)
        assert run.ok, run.result.fault

    def test_overhead_in_papers_range(self):
        """Paper: Multiverse causes 'above 30% performance overhead' on
        indirect-heavy code."""
        binary = IndirectDispatchWorkload(iterations=300).build("base")
        native = run_native(binary, RV64GC)
        mv = run_multiverse(binary, RV64GC)
        overhead = (mv.cycles - native.cycles) / native.cycles
        assert overhead > 0.25, f"only {overhead:.1%}"
