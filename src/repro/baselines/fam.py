"""Fault-and-migrate (FAM) heterogeneous computing [39] (§2.1).

No rewriting at all: the original binary runs anywhere, and when a base
core hits an extension instruction the resulting SIGILL prompts the
scheduler to migrate the task to an extension-capable core.  Simple,
but extension tasks can never use base cores (under-utilization) and a
base binary can never be accelerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.cpu import Cpu
from repro.sim.faults import IllegalInstructionFault
from repro.sim.machine import Core, Kernel, Process, RunResult


@dataclass
class FamOutcome:
    """Result of a FAM run, including where the task finally executed."""

    result: RunResult
    migrations: int
    finished_on: Core


class FamRuntime:
    """Migrate-on-SIGILL execution of one task over a core pair."""

    def __init__(self, kernel: Optional[Kernel] = None):
        self.kernel = kernel or Kernel()

    def run(
        self,
        process: Process,
        base_core: Core,
        ext_core: Core,
        *,
        start_on_base: bool = True,
        max_instructions: int = 50_000_000,
    ) -> FamOutcome:
        """Run *process*, starting on the base core and migrating on fault.

        The migration preserves the full architectural context (integer
        registers, pc, vector state is empty pre-fault by construction)
        and charges the migration cost to the destination core's cycles.
        """
        first = base_core if start_on_base else ext_core
        cpu = self.kernel.make_cpu(process, first)
        result = self.kernel.run(process, first, cpu=cpu, max_instructions=max_instructions)
        migrations = 0
        finished_on = first
        if (
            isinstance(result.fault, IllegalInstructionFault)
            and result.fault.kind == "unsupported-extension"
            and first.profile is not ext_core.profile
        ):
            # Migrate: same address space, context carried over.
            cpu2 = Cpu(
                process.space,
                profile=ext_core.profile,
                cost_model=cpu.cost,
                name=f"{process.name}@{ext_core}",
            )
            cpu2.regs[:] = cpu.regs
            cpu2.pc = cpu.pc
            cpu2.cycles = cpu.cycles + ext_core.params.migration_cost
            cpu2.instret = cpu.instret
            cpu2.counters.update(cpu.counters)
            cpu2.bump("fam_migrations")
            migrations = 1
            finished_on = ext_core
            result = self.kernel.run(
                process, ext_core, cpu=cpu2,
                max_instructions=max_instructions - cpu.instret,
            )
        return FamOutcome(result, migrations, finished_on)
