"""Workload program and synthetic-binary generator tests."""

import pytest

from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.machine import Core, Kernel
from repro.workloads.programs import ALL_WORKLOADS, MatMulWorkload
from repro.workloads.spec_profiles import APP_PROFILES, PROFILES, SPEC_PROFILES
from repro.workloads.synthetic import SyntheticBinary


class TestKernelWorkloads:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    @pytest.mark.parametrize("variant", ["base", "ext"])
    def test_native_self_check_passes(self, name, variant):
        binary = ALL_WORKLOADS[name].build(variant)
        proc = make_process(binary)
        res = Kernel().run(proc, Core(0, RV64GCV))
        assert res.ok, f"{name}/{variant}: exit={res.exit_code} fault={res.fault}"

    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_base_variant_runs_on_base_core(self, name):
        binary = ALL_WORKLOADS[name].build("base")
        proc = make_process(binary)
        res = Kernel().run(proc, Core(0, RV64GC))
        assert res.ok

    def test_ext_variant_faults_on_base_core(self):
        binary = ALL_WORKLOADS["matmul"].build("ext")
        proc = make_process(binary)
        res = Kernel().run(proc, Core(0, RV64GC))
        assert res.fault is not None

    def test_vector_variant_faster(self):
        for name in ("matmul", "gemv", "dot"):
            w = ALL_WORKLOADS[name]
            base = Kernel().run(make_process(w.build("base")), Core(0, RV64GCV))
            ext = Kernel().run(make_process(w.build("ext")), Core(0, RV64GCV))
            assert ext.cycles < base.cycles, name

    def test_self_check_catches_corruption(self):
        """Sanity of the self-check itself: corrupt the expectation."""
        binary = MatMulWorkload(n=4).build("ext")
        addr = binary.symbol_addr("c_expect")
        binary.data.write(addr, b"\xFF" * 8)
        proc = make_process(binary)
        res = Kernel().run(proc, Core(0, RV64GCV))
        assert res.exit_code == 1

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            ALL_WORKLOADS["matmul"].build("avx512")

    def test_workloads_deterministic(self):
        b1 = ALL_WORKLOADS["dot"].build("ext")
        b2 = ALL_WORKLOADS["dot"].build("ext")
        assert bytes(b1.text.data) == bytes(b2.text.data)
        assert bytes(b1.data.data) == bytes(b2.data.data)


class TestSpecProfiles:
    def test_all_transcribed(self):
        assert len(SPEC_PROFILES) == 18
        assert len(APP_PROFILES) == 7

    def test_table3_values_present(self):
        p = PROFILES["wrf_r"]
        assert p.code_size_mb == pytest.approx(16.79)
        assert p.paper_trampolines == 41408
        assert p.paper_deadreg_ours == 103
        assert p.paper_deadreg_traditional == 11121

    def test_derived_rates_sane(self):
        for p in PROFILES.values():
            assert 0 < p.ext_inst_pct < 10
            assert 0 < p.high_pressure_share < 1
            assert p.indirect_per_kinst > 0


class TestSyntheticBinaries:
    def test_deterministic_across_processes(self):
        p = PROFILES["omnetpp_r"]
        b1 = SyntheticBinary(p, scale=128).build()
        b2 = SyntheticBinary(p, scale=128).build()
        assert bytes(b1.text.data) == bytes(b2.text.data)

    def test_code_size_tracks_profile(self):
        small = SyntheticBinary(PROFILES["omnetpp_r"], scale=128).build()
        large = SyntheticBinary(PROFILES["wrf_r"], scale=128).build()
        assert large.text.size > 4 * small.text.size

    def test_runs_cleanly_on_ext_core(self):
        binary = SyntheticBinary(PROFILES["perlbench_r"], scale=128).build()
        proc = make_process(binary)
        res = Kernel().run(proc, Core(0, RV64GCV))
        assert res.ok

    def test_contains_extension_and_compressed_instructions(self):
        from repro.analysis.scan import RecursiveScanner
        from repro.isa.extensions import Extension

        binary = SyntheticBinary(PROFILES["cam4_r"], scale=128).build()
        scan = RecursiveScanner().scan(binary)
        exts = {i.extension for i in scan.instructions.values()}
        assert Extension.V in exts
        assert Extension.C in exts
        lengths = {i.length for i in scan.instructions.values()}
        assert lengths == {2, 4}

    def test_static_ext_share_in_range(self):
        from repro.analysis.scan import RecursiveScanner
        from repro.isa.extensions import Extension

        p = PROFILES["cam4_r"]  # 3.37% in the paper
        binary = SyntheticBinary(p, scale=128).build()
        scan = RecursiveScanner().scan(binary)
        n = len(scan.instructions)
        n_ext = sum(1 for i in scan.instructions.values()
                    if i.extension in (Extension.V, Extension.ZBA))
        share = 100.0 * n_ext / n
        assert 0.3 * p.ext_inst_pct <= share <= 3.0 * p.ext_inst_pct
