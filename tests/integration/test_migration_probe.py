"""Probe-based delayed migration (the paper's uprobe mechanism)."""

import pytest

from repro.core.mmview import MigrationProbeManager, MMViewProcess
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.cpu import Cpu
from repro.sim.machine import Core, Kernel

from tests.integration.test_migration_e2e import (
    expected_dot,
    make_views,
    step_once,
    striped_workload,
)


class TestMigrationProbe:
    def test_probe_fires_and_commits(self):
        binary = striped_workload()
        expected = expected_dot(binary)
        rewriter = ChimeraRewriter()
        views = make_views(binary, rewriter)
        proc = MMViewProcess("probe", views, initial="rv64gcv")
        kernel = Kernel()
        probes = MigrationProbeManager(proc)
        probes.install(kernel)
        ChimeraRuntime(views["rv64gc"], rewriter=rewriter, original=binary).install(kernel)
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))

        # Step into the vector loop (an unsafe region for the base view).
        for _ in range(20):
            step_once(kernel, proc, cpu)
        migrated_now = probes.request_migration(cpu, "rv64gc")

        if migrated_now:
            pytest.skip("pc happened to be at a safe point; nothing to probe")
        assert proc.pending_migration == "rv64gc"
        assert probes._armed, "no probe armed despite delayed migration"

        # Keep running: the probe must fire, restore the bytes, and
        # commit the view switch.
        finished = False
        for _ in range(200_000):
            if proc.active_view == "rv64gc":
                break
            if step_once(kernel, proc, cpu):
                finished = True
                break
        if not finished:
            assert proc.active_view == "rv64gc"
            assert probes.fired == 1
            assert not probes._armed  # original bytes restored
            # Finish on a base-core CPU and verify the result.
            cpu2 = Cpu(proc.space, profile=RV64GC, cost_model=cpu.cost)
            cpu2.regs[:] = cpu.regs
            cpu2.pc = cpu.pc
            cpu2.vector.restore(cpu.vector.snapshot())
            res = kernel.run(proc, Core(1, RV64GC), cpu=cpu2)
            assert res.ok, res.fault
        assert proc.space.read_u64(binary.symbol_addr("out")) == expected

    def test_probe_restores_original_bytes(self):
        binary = striped_workload()
        rewriter = ChimeraRewriter()
        views = make_views(binary, rewriter)
        proc = MMViewProcess("probe", views, initial="rv64gcv")
        kernel = Kernel()
        probes = MigrationProbeManager(proc)
        probes.install(kernel)
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))
        addr = binary.entry + 4
        before = bytes(proc.space.fetch(addr, 2))
        probes.arm(cpu, addr)
        assert bytes(proc.space.fetch(addr, 2)) != before
        # Run until the probe traps; the handler restores the bytes.
        for _ in range(50):
            step_once(kernel, proc, cpu)
            if probes.fired:
                break
        assert probes.fired == 1
        assert bytes(proc.space.fetch(addr, 2)) == before

    def test_safe_pc_migrates_immediately(self):
        binary = striped_workload()
        rewriter = ChimeraRewriter()
        views = make_views(binary, rewriter)
        proc = MMViewProcess("probe", views, initial="rv64gcv")
        kernel = Kernel()
        probes = MigrationProbeManager(proc)
        probes.install(kernel)
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))
        # At the entry point nothing is patched: immediate switch.
        assert probes.request_migration(cpu, "rv64gc")
        assert proc.active_view == "rv64gc"
        assert probes.fired == 0
