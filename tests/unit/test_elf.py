"""Binary container, builder, and loader tests."""

import pytest

from repro.elf.binary import Binary, Perm, Section, Symbol
from repro.elf.builder import GP_OFFSET, BuildError, ProgramBuilder
from repro.elf.loader import load_binary, make_process
from repro.sim.faults import SegmentationFault


def simple_binary() -> Binary:
    b = ProgramBuilder("t")
    b.add_words("arr", [1, 2, 3])
    b.set_text("_start:\nnop\nret\n")
    return b.build()


class TestSection:
    def test_read_write_bounds(self):
        s = Section(".d", 0x100, bytearray(16), Perm.RW)
        s.write(0x108, b"\x01\x02")
        assert s.read(0x108, 2) == b"\x01\x02"
        with pytest.raises(ValueError):
            s.read(0x100, 17)
        with pytest.raises(ValueError):
            s.write(0xFF, b"x")

    def test_contains(self):
        s = Section(".d", 0x100, bytearray(16), Perm.RW)
        assert s.contains(0x100) and s.contains(0x10F)
        assert not s.contains(0x110)


class TestBinary:
    def test_overlap_rejected(self):
        b = Binary("t")
        b.add_section(Section(".a", 0x0, bytearray(16), Perm.R))
        with pytest.raises(ValueError):
            b.add_section(Section(".b", 0x8, bytearray(16), Perm.R))

    def test_section_lookup(self):
        binary = simple_binary()
        assert binary.text.name == ".text"
        assert binary.section_at(binary.entry) is binary.text
        assert binary.section_at(0xDEAD0000) is None
        with pytest.raises(KeyError):
            binary.section("nope")

    def test_clone_is_deep(self):
        binary = simple_binary()
        clone = binary.clone()
        clone.text.data[0] = 0xFF
        assert binary.text.data[0] != 0xFF
        assert clone.entry == binary.entry
        assert clone.global_pointer == binary.global_pointer

    def test_total_code_size(self):
        binary = simple_binary()
        assert binary.total_code_size() == binary.text.size


class TestBuilder:
    def test_gp_points_into_data(self):
        binary = simple_binary()
        gp = binary.global_pointer
        section = binary.section_at(gp)
        assert section is not None and Perm.W in section.perm
        assert Perm.X not in section.perm  # the SMILE precondition
        assert gp == binary.data.addr + GP_OFFSET

    def test_data_symbols(self):
        b = ProgramBuilder("t")
        a1 = b.add_words("a1", [1])
        a2 = b.add_words("a2", [2, 3])
        b.set_text("_start:\nret\n")
        binary = b.build()
        assert binary.symbol_addr("a1") == a1
        assert binary.symbol_addr("a2") == a2
        assert binary.symbols["a2"].size == 16

    def test_text_placeholders(self):
        b = ProgramBuilder("t")
        addr = b.add_words("blob", [7])
        b.set_text("_start:\nli a0, {blob}\nret\n")
        binary = b.build()
        assert binary.entry == binary.symbol_addr("_start")

    def test_unknown_placeholder_rejected(self):
        b = ProgramBuilder("t")
        b.set_text("_start:\nli a0, {nosuch}\nret\n")
        with pytest.raises(BuildError):
            b.build()

    def test_missing_entry_rejected(self):
        b = ProgramBuilder("t")
        b.set_text("main:\nret\n")
        with pytest.raises(BuildError):
            b.build()

    def test_mark_function_exports_func_symbol(self):
        b = ProgramBuilder("t")
        b.set_text("_start:\nret\nhelper:\nret\n")
        b.mark_function("helper")
        binary = b.build()
        assert binary.symbols["helper"].kind == "func"
        assert binary.symbols["_start"].kind == "func"


class TestLoader:
    def test_segments_and_permissions(self):
        binary = simple_binary()
        space = load_binary(binary)
        text_seg = space.segment_at(binary.entry)
        assert Perm.X in text_seg.perm
        data_seg = space.segment_at(binary.data.addr)
        assert Perm.W in data_seg.perm and Perm.X not in data_seg.perm
        # Executing from data faults deterministically.
        with pytest.raises(SegmentationFault):
            space.fetch(binary.data.addr, 4)

    def test_copy_isolation(self):
        binary = simple_binary()
        space = load_binary(binary)
        space.write(binary.symbol_addr("arr"), b"\xAA")
        assert binary.data.read(binary.symbol_addr("arr"), 1) != b"\xAA"

    def test_shared_data_between_spaces(self):
        binary = simple_binary()
        s1 = load_binary(binary)
        s2 = load_binary(binary, share_data_from=s1)
        addr = binary.symbol_addr("arr")
        s1.write(addr, b"\x55")
        assert s2.read(addr, 1) == b"\x55"  # MMView property
        # Code is NOT shared.
        assert s1.segment_at(binary.entry).data is not s2.segment_at(binary.entry).data

    def test_make_process_seeds_abi(self):
        binary = simple_binary()
        proc = make_process(binary)
        assert proc.gp == binary.global_pointer
        assert proc.entry == binary.entry
        assert proc.sp > 0
