"""Serialisation of a telemetry session to ``trace.json`` + ``metrics.json``.

``trace.json`` is Chrome ``trace_event`` JSON (object format) — drag it
into chrome://tracing or https://ui.perfetto.dev.  ``metrics.json``
follows the ``repro.telemetry/metrics/v1`` schema documented in
DESIGN.md; :func:`validate_metrics` checks a payload against it (used by
the CI smoke step and the integration tests).
"""

from __future__ import annotations

import json
import os

METRICS_SCHEMA = "repro.telemetry/metrics/v1"

TRACE_FILENAME = "trace.json"
METRICS_FILENAME = "metrics.json"

_HISTOGRAM_STATS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")


def metrics_payload(registry) -> dict:
    """The ``metrics.json`` payload for *registry* (schema v1)."""
    payload = registry.as_dict()
    payload["schema"] = METRICS_SCHEMA
    return payload


def write_telemetry(telemetry, outdir) -> dict:
    """Dump *telemetry* into *outdir*; returns ``{"trace": path, "metrics": path}``."""
    outdir = os.fspath(outdir)
    os.makedirs(outdir, exist_ok=True)
    trace_path = os.path.join(outdir, TRACE_FILENAME)
    metrics_path = os.path.join(outdir, METRICS_FILENAME)
    with open(trace_path, "w", encoding="utf-8") as fh:
        json.dump(telemetry.tracer.to_chrome(), fh, indent=1)
        fh.write("\n")
    with open(metrics_path, "w", encoding="utf-8") as fh:
        json.dump(metrics_payload(telemetry.metrics), fh, indent=1, sort_keys=True)
        fh.write("\n")
    return {"trace": trace_path, "metrics": metrics_path}


def validate_metrics(payload) -> list[str]:
    """Schema-check a ``metrics.json`` payload; returns problem strings
    (empty list == valid)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != METRICS_SCHEMA:
        errors.append(f"schema must be {METRICS_SCHEMA!r}, got {payload.get('schema')!r}")

    def check_entries(kind: str, value_check) -> None:
        entries = payload.get(kind)
        if not isinstance(entries, list):
            errors.append(f"{kind} must be a list")
            return
        for i, entry in enumerate(entries):
            where = f"{kind}[{i}]"
            if not isinstance(entry, dict):
                errors.append(f"{where} must be an object")
                continue
            if not isinstance(entry.get("name"), str) or not entry.get("name"):
                errors.append(f"{where}.name must be a non-empty string")
            labels = entry.get("labels")
            if not isinstance(labels, dict) or not all(
                isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
            ):
                errors.append(f"{where}.labels must map strings to strings")
            value_check(where, entry)

    def check_number(where: str, entry: dict) -> None:
        value = entry.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}.value must be a number")

    def check_stats(where: str, entry: dict) -> None:
        stats = entry.get("stats")
        if not isinstance(stats, dict):
            errors.append(f"{where}.stats must be an object")
            return
        for key in _HISTOGRAM_STATS:
            value = stats.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{where}.stats.{key} must be a number")

    check_entries("counters", check_number)
    check_entries("gauges", check_number)
    check_entries("histograms", check_stats)
    return errors


def validate_metrics_file(path) -> list[str]:
    """:func:`validate_metrics` on a JSON file; parse failures are errors."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read {path}: {exc}"]
    return validate_metrics(payload)
