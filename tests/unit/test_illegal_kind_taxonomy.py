"""One test per IllegalInstructionFault.kind: decode + runtime dispatch.

The four kinds partition Chimera's SIGILL surface:

* ``long-prefix``          — SMILE's P2 parcel (reserved >=48-bit prefix);
* ``reserved-compressed``  — SMILE's P3 parcel (c.addiw rd=x0, etc.);
* ``unknown``              — encodings outside the modeled subset;
* ``unsupported-extension``— a real instruction the core lacks: the
  trigger for Chimera's lazy runtime rewriting.

Each test drives the real CPU over crafted bytes (asserting the decode
path tags the fault correctly, with the pc filled in) and then asserts
what the ChimeraRuntime does with that kind.
"""

import pytest

from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.core.smile import smile_offset_label
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.cpu import Cpu
from repro.sim.faults import IllegalInstructionFault, UnrecoverableFault
from repro.sim.machine import Core, Kernel


def scalar_binary():
    b = ProgramBuilder("taxonomy")
    b.set_text("""
_start:
    nop
    nop
    nop
    li a7, 93
    li a0, 0
    ecall
""")
    return b.build()


def fault_from_bytes(encoding: bytes) -> IllegalInstructionFault:
    """Patch *encoding* over the entry point and step the real CPU."""
    binary = scalar_binary()
    proc = make_process(binary)
    proc.space.patch_code(binary.entry, encoding)
    cpu = Cpu(proc.space, profile=RV64GC)
    cpu.pc = binary.entry
    with pytest.raises(IllegalInstructionFault) as exc:
        cpu.step()
    assert exc.value.pc == binary.entry  # satellite: pc always filled in
    return exc.value


def rewritten_vector_setup():
    b = ProgramBuilder("taxonomy-vec")
    b.add_words("buf", [3, 4] + [0] * 8)
    b.set_text("""
_start:
    li a0, {buf}
    li a1, 2
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vse64.v v1, (a0)
    li a7, 93
    li a0, 0
    ecall
""")
    binary = b.build()
    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(binary, RV64GC)
    runtime = ChimeraRuntime(result.binary, rewriter=rewriter, original=binary)
    kernel = Kernel()
    runtime.install(kernel)
    proc = make_process(result.binary)
    cpu = kernel.make_cpu(proc, Core(0, RV64GC))
    regions = [
        tuple(r) for r in result.binary.metadata["chimera"]["patched_regions"]
        if r[2] == "smile"
    ]
    assert regions, "vector workload produced no SMILE trampolines"
    return runtime, kernel, proc, cpu, regions[0][0]


class TestLongPrefix:
    def test_decode_kind_and_pc(self):
        # Low 5 bits = 11111 announce a reserved >=48-bit encoding.
        fault = fault_from_bytes(b"\x1f\x00\x00\x00")
        assert fault.kind == "long-prefix"

    def test_p2_parcel_is_long_prefix_and_killed_structurally(self):
        """Entering the trampoline at P2 decodes the auipc's immediate
        parcel as a long-prefix fault; no fault-table entry exists at
        +2, and the region is the runtime's, so dispatch must end in a
        structured kill — never a silent decline."""
        runtime, kernel, proc, cpu, window = rewritten_vector_setup()
        p2 = window + 2
        assert smile_offset_label(p2 - window) == "P2"
        cpu.pc = p2
        with pytest.raises(IllegalInstructionFault) as exc:
            cpu.step()
        assert exc.value.kind == "long-prefix"
        with pytest.raises(UnrecoverableFault):
            runtime.handle_fault(kernel, proc, cpu, exc.value)


class TestReservedCompressed:
    def test_decode_kind_and_pc(self):
        # c.addiw rd=x0: Q1, funct3=001 — SMILE's pinned P3 parcel.
        fault = fault_from_bytes(bytes([0x01, 0x20]))
        assert fault.kind == "reserved-compressed"

    def test_all_zero_parcel(self):
        fault = fault_from_bytes(b"\x00\x00")
        assert fault.kind == "reserved-compressed"

    def test_p3_parcel_is_reserved_and_killed_structurally(self):
        runtime, kernel, proc, cpu, window = rewritten_vector_setup()
        p3 = window + 6
        assert smile_offset_label(p3 - window) == "P3"
        cpu.pc = p3
        with pytest.raises(IllegalInstructionFault) as exc:
            cpu.step()
        assert exc.value.kind == "reserved-compressed"
        with pytest.raises(UnrecoverableFault):
            runtime.handle_fault(kernel, proc, cpu, exc.value)

    def test_fault_table_key_redirects(self):
        """A reserved parcel at a pc the fault table knows (the runtime
        plants these during rewriting) redirects instead of killing."""
        runtime, kernel, proc, cpu, _ = rewritten_vector_setup()
        key, redirect = next(iter(runtime.fault_table))
        cpu.pc = key
        fault = IllegalInstructionFault(key, "reserved-compressed")
        assert runtime.handle_fault(kernel, proc, cpu, fault)
        assert cpu.pc == redirect
        assert runtime.stats.smile_sigill_recoveries == 1


class TestUnknown:
    def test_decode_kind_and_pc(self):
        # custom-3 major opcode: outside the modeled subset.
        fault = fault_from_bytes(bytes([0x7B, 0x00, 0x00, 0x00]))
        assert fault.kind == "unknown"

    def test_runtime_declines_unknown_outside_patched_regions(self):
        """An unknown encoding at an address Chimera never touched is
        not the runtime's: dispatch returns False and the kernel's
        default kill applies (no rewrite attempt, no structured claim)."""
        runtime, kernel, proc, cpu, _ = rewritten_vector_setup()
        pc = proc.space.fetch_segment(cpu.pc).base  # plain .text, unpatched
        fault = IllegalInstructionFault(pc + 0x7000, "unknown")
        cpu.pc = fault.pc
        assert not runtime.handle_fault(kernel, proc, cpu, fault)
        assert runtime.stats.runtime_rewrites == 0


class TestUnsupportedExtension:
    def test_decode_kind_and_pc(self):
        """A well-formed vector instruction on a vectorless core: the
        encoding decodes fine; execution faults with the kind that
        drives FAM migration and lazy rewriting."""
        b = ProgramBuilder("vec-on-base")
        b.add_words("buf", [1, 2] + [0] * 4)
        b.set_text("""
_start:
    li a0, {buf}
    li a1, 2
    vsetvli t0, a1, e64
    li a7, 93
    li a0, 0
    ecall
""")
        binary = b.build()
        proc = make_process(binary)
        cpu = Cpu(proc.space, profile=RV64GC)
        cpu.pc = binary.entry
        fault = None
        for _ in range(8):
            try:
                cpu.step()
            except IllegalInstructionFault as exc:
                fault = exc
                break
        assert fault is not None
        assert fault.kind == "unsupported-extension"
        assert fault.pc is not None
        # The same bytes execute cleanly on a vector-capable core.
        cpu2 = Cpu(make_process(binary).space, profile=RV64GCV)
        cpu2.pc = binary.entry
        for _ in range(3):
            cpu2.step()

    def test_runtime_dispatch_triggers_lazy_rewrite(self):
        """unsupported-extension is the one SIGILL kind the runtime
        repairs by rewriting at runtime (scan-missed instruction)."""
        b = ProgramBuilder("lazy-kind")
        b.add_words("buf", [7, 8] + [0] * 8)
        b.add_words("slot", [0])
        b.set_text("""
_start:
    la t0, hidden
    li t1, {slot}
    sd t0, 0(t1)
    li a0, {buf}
    li a1, 2
    ld t0, 0(t1)
    jalr t0
    li a7, 93
    li a0, 0
    ecall
    .word 0xffffffff   # data island: stops the linear fall-through scan
hidden:
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    ret
""")
        binary = b.build()
        rewriter = ChimeraRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        runtime = ChimeraRuntime(result.binary, rewriter=rewriter, original=binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok
        assert runtime.stats.runtime_rewrites >= 1
