"""Trampoline windows over mixed 2/4-byte instructions (Fig. 4's cases)."""

import pytest

from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.machine import Core, Kernel


def build_with_neighbors(neighbors: str):
    """A vector source followed by the given neighbor instructions."""
    b = ProgramBuilder("cw")
    b.add_words("buf", [3, 4] + [0] * 8)
    b.add_words("out", [0])
    b.set_text(f"""
_start:
    li a0, {{buf}}
    li a1, 2
    li s0, 0
    li s1, 0
    vsetvli t0, a1, e64
{neighbors}
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    add s0, s0, s1
    li t1, {{out}}
    sd s0, 0(t1)
    li a7, 93
    li a0, 0
    ecall
""")
    return b.build()


NEIGHBOR_MIXES = [
    pytest.param("    c.addi s0, 1\n    c.addi s1, 2\n", id="2+2-byte"),
    pytest.param("    c.addi s0, 3\n    addi s1, s1, 4\n", id="2+4-byte"),
    pytest.param("    addi s0, s0, 5\n    c.addi s1, 6\n", id="4+2-byte"),
    pytest.param("    addi s0, s0, 7\n    addi s1, s1, 8\n", id="4+4-byte"),
    pytest.param("    c.addi s0, 1\n    c.addi s1, 1\n    c.addi s0, 1\n    c.addi s1, 1\n",
                 id="four-2-byte"),
]


@pytest.mark.parametrize("neighbors", NEIGHBOR_MIXES)
def test_mixed_width_windows_preserve_semantics(neighbors):
    binary = build_with_neighbors(neighbors)

    # Reference: native run on an extension core.
    ref_proc = make_process(binary)
    ref = Kernel().run(ref_proc, Core(0, RV64GCV))
    assert ref.ok
    out = binary.symbol_addr("out")
    expected = ref_proc.space.read_u64(out)

    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(binary, RV64GC)
    proc = make_process(result.binary)
    kernel = Kernel()
    ChimeraRuntime(result.binary, rewriter=rewriter, original=binary).install(kernel)
    res = kernel.run(proc, Core(0, RV64GC))
    assert res.ok, res.fault
    assert proc.space.read_u64(out) == expected
    buf = binary.symbol_addr("buf")
    assert proc.space.read_u64(buf) == 6
    assert proc.space.read_u64(buf + 8) == 8


@pytest.mark.parametrize("neighbors", NEIGHBOR_MIXES)
def test_interior_boundaries_recover(neighbors):
    """Force the pc to every fault-table key; each must recover and the
    program's remaining execution must still satisfy the self-state."""
    binary = build_with_neighbors(neighbors)
    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(binary, RV64GC)
    runtime = ChimeraRuntime(result.binary)
    from repro.sim.faults import SimFault

    for key, redirect in dict(runtime.fault_table).items():
        kernel = Kernel()
        rt = ChimeraRuntime(result.binary)
        rt.install(kernel)
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        cpu.pc = key
        try:
            cpu.step()
        except SimFault as fault:
            assert rt.handle_fault(kernel, proc, cpu, fault), \
                f"boundary {key:#x} did not recover deterministically"
            assert cpu.pc == redirect
