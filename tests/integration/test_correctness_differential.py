"""§6.3 correctness: every workload x rewriter x direction, checked
differentially — the rewritten binary must pass its built-in test suite
(self-check exit code) AND leave the data segment byte-identical to the
original run.
"""

import pytest

from repro.harness import run_armore, run_chimera, run_native, run_safer, run_strawman
from repro.isa.extensions import RV64GC, RV64GCV
from repro.elf.loader import make_process
from repro.sim.machine import Core, Kernel
from repro.workloads.programs import ALL_WORKLOADS

RUNNERS = {
    "chimera": run_chimera,
    "safer": run_safer,
    "armore": run_armore,
    "strawman": run_strawman,
}


def final_data(binary, run_fn, profile, **kw):
    """Run and capture (exit ok, final .data bytes)."""
    run = run_fn(binary, profile, **kw) if run_fn is not run_native else run_native(binary, profile)
    return run


@pytest.mark.parametrize("workload", sorted(ALL_WORKLOADS))
@pytest.mark.parametrize("system", sorted(RUNNERS))
def test_downgraded_binary_passes_suite(workload, system):
    binary = ALL_WORKLOADS[workload].build("ext")
    run = RUNNERS[system](binary, RV64GC)
    assert run.ok, f"{system} broke {workload}: {run.result.fault} exit={run.result.exit_code}"


@pytest.mark.parametrize("workload", sorted(ALL_WORKLOADS))
def test_upgraded_binary_passes_suite(workload):
    binary = ALL_WORKLOADS[workload].build("base")
    run = run_chimera(binary, RV64GCV)
    assert run.ok, f"upgrade broke {workload}: {run.result.fault}"


@pytest.mark.parametrize("workload", ["matmul", "vecadd", "dot", "memcpy"])
def test_downgrade_differential_state(workload):
    """Final data-segment bytes must match the native-extension run."""
    w = ALL_WORKLOADS[workload]
    ext = w.build("ext")

    ref_proc = make_process(ext)
    ref = Kernel().run(ref_proc, Core(0, RV64GCV))
    assert ref.ok
    ref_data = bytes(ref_proc.space.segment_at(ext.data.addr).data)

    from repro.core.rewriter import ChimeraRewriter
    from repro.core.runtime import ChimeraRuntime

    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(ext, RV64GC)
    proc = make_process(result.binary)
    kernel = Kernel()
    ChimeraRuntime(result.binary, rewriter=rewriter, original=ext).install(kernel)
    res = kernel.run(proc, Core(0, RV64GC))
    assert res.ok
    got = bytes(proc.space.segment_at(ext.data.addr).data)
    assert got == ref_data


@pytest.mark.parametrize("workload", ["matmul", "vecadd", "dot"])
def test_upgrade_differential_state(workload):
    w = ALL_WORKLOADS[workload]
    base = w.build("base")

    ref_proc = make_process(base)
    ref = Kernel().run(ref_proc, Core(0, RV64GC))
    assert ref.ok
    ref_data = bytes(ref_proc.space.segment_at(base.data.addr).data)

    from repro.core.rewriter import ChimeraRewriter
    from repro.core.runtime import ChimeraRuntime

    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(base, RV64GCV)
    proc = make_process(result.binary)
    kernel = Kernel()
    ChimeraRuntime(result.binary).install(kernel)
    res = kernel.run(proc, Core(0, RV64GCV))
    assert res.ok
    got = bytes(proc.space.segment_at(base.data.addr).data)
    assert got == ref_data


def test_empty_patching_preserves_behavior():
    """Empty-mode rewriting (replicated sources) on an extension core."""
    binary = ALL_WORKLOADS["matmul"].build("ext")
    run = run_chimera(binary, RV64GC, mode="empty", run_profile=RV64GCV)
    assert run.ok


@pytest.mark.parametrize("system", sorted(RUNNERS))
def test_empty_patching_all_systems(system):
    binary = ALL_WORKLOADS["dispatch"].build("ext")
    run = RUNNERS[system](binary, RV64GC, mode="empty", run_profile=RV64GCV)
    assert run.ok, f"{system}: {run.result.fault}"
