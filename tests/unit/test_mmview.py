"""MMView process-model tests (multi-view processes, migration safety)."""

import pytest

from repro.core.mmview import MMViewProcess
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.builder import ProgramBuilder
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.machine import Core, Kernel


def two_view_process():
    b = ProgramBuilder("mm")
    b.add_words("buf", [1, 2, 3, 4] + [0] * 8)
    b.set_text("""
_start:
    li a0, {buf}
    li a1, 4
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    li a7, 93
    li a0, 0
    ecall
""")
    binary = b.build()
    rewriter = ChimeraRewriter()
    views = {
        "rv64gc": rewriter.rewrite(binary, RV64GC).binary,
        "rv64gcv": rewriter.rewrite(binary, RV64GCV).binary,
    }
    return binary, MMViewProcess("mm", views, initial="rv64gcv")


class TestConstruction:
    def test_views_share_data(self):
        binary, proc = two_view_process()
        addr = binary.symbol_addr("buf")
        proc.views["rv64gcv"].space.write(addr, b"\x42")
        assert proc.views["rv64gc"].space.read(addr, 1) == b"\x42"

    def test_views_have_distinct_code(self):
        binary, proc = two_view_process()
        gc = proc.views["rv64gc"].space.segment_at(binary.entry)
        gcv = proc.views["rv64gcv"].space.segment_at(binary.entry)
        assert gc.data is not gcv.data

    def test_bad_initial_rejected(self):
        binary, proc = two_view_process()
        with pytest.raises(ValueError):
            MMViewProcess("x", {"rv64gc": proc.views["rv64gc"].binary}, initial="nope")


class TestMigrationSafety:
    def test_original_text_pc_is_safe(self):
        binary, proc = two_view_process()
        assert proc.migration_safe_pc(binary.entry)

    def test_chimera_text_pc_is_unsafe(self):
        binary, proc = two_view_process()
        view = proc.views["rv64gc"]
        if view.has_chimera_text:
            ct = view.binary.section(".chimera.text")
            proc.active_view = "rv64gc"
            proc.space = view.space
            assert not proc.migration_safe_pc(ct.addr)

    def test_migrate_switches_space(self):
        binary, proc = two_view_process()
        kernel = Kernel()
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))
        cpu.pc = binary.entry
        assert proc.migrate(cpu, "rv64gc")
        assert proc.active_view == "rv64gc"
        assert cpu.space is proc.views["rv64gc"].space
        assert proc.migrations == 1

    def test_migrate_to_same_view_noop(self):
        binary, proc = two_view_process()
        kernel = Kernel()
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))
        assert proc.migrate(cpu, "rv64gcv")
        assert proc.migrations == 0

    def test_unsafe_pc_delays_migration(self):
        binary, proc = two_view_process()
        proc.active_view = "rv64gc"
        proc.space = proc.views["rv64gc"].space
        kernel = Kernel()
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        ct = proc.views["rv64gc"].binary.section(".chimera.text")
        cpu.pc = ct.addr
        assert not proc.migrate(cpu, "rv64gcv")
        assert proc.pending_migration == "rv64gcv"
        assert proc.delayed_migrations == 1
        # Once the pc leaves the target-instruction section, it commits.
        cpu.pc = binary.entry
        assert proc.try_commit_pending(cpu)
        assert proc.active_view == "rv64gcv"


class TestVectorStateSync:
    def test_arch_regs_to_region_on_downgrade_migration(self):
        binary, proc = two_view_process()
        kernel = Kernel()
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))
        cpu.pc = binary.entry
        cpu.vector.set_vl(4, 64)
        cpu.vector.write_elems(1, [11, 22, 33, 44])
        proc.migrate(cpu, "rv64gc")
        meta = proc.views["rv64gc"].binary.metadata["chimera"]
        base = meta["vregs_base"]
        got = [proc.space.read_u64(base + 32 + 8 * i) for i in range(4)]  # v1 image
        assert got == [11, 22, 33, 44]

    def test_region_to_arch_regs_on_upgrade_migration(self):
        binary, proc = two_view_process()
        kernel = Kernel()
        cpu = kernel.make_cpu(proc, Core(0, RV64GCV))
        cpu.pc = binary.entry
        cpu.vector.set_vl(2, 64)
        cpu.vector.write_elems(2, [7, 9])
        proc.migrate(cpu, "rv64gc")   # arch -> region
        cpu.vector.write_elems(2, [0, 0])
        proc.migrate(cpu, "rv64gcv")  # region -> arch
        assert cpu.vector.read_elems(2, 2) == [7, 9]


class TestEndToEndMigration:
    def test_run_on_base_view_correct(self):
        binary, proc = two_view_process()
        proc.active_view = "rv64gc"
        proc.space = proc.views["rv64gc"].space
        kernel = Kernel()
        ChimeraRuntime(proc.views["rv64gc"].binary).install(kernel)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok
        buf = binary.symbol_addr("buf")
        assert [proc.space.read_u64(buf + 8 * i) for i in range(4)] == [2, 4, 6, 8]
