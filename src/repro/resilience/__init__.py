"""Fault-tolerant heterogeneous execution (the resilience layer).

Chimera's headline property — one rewritten binary runs on *every* core
— means the system can survive the loss of any core, including all
extension cores, by migrating work to whatever still runs and paying
only the downgrade cost.  This package supplies the machinery:

* :mod:`~repro.resilience.failures` — core kills/flakes mid-task,
  dropped migrations, corrupted checkpoints (scripted + seeded);
* :mod:`~repro.resilience.checkpoint` — checksummed CPU/address-space
  snapshots, restore-on-another-core, corruption *detected* not trusted;
* :mod:`~repro.resilience.policy` — retry with exponential backoff,
  attempt/deadline budgets, quarantine ladder, ``ResilienceStats``;
* :mod:`~repro.resilience.executor` — one fault-tolerant task execution;
* :mod:`~repro.resilience.scenarios` — the named end-to-end scenarios
  behind ``python -m repro resilience <scenario>`` (imported lazily to
  keep this package import-light).
"""

from repro.resilience.checkpoint import Checkpoint
from repro.resilience.executor import TaskExecution, run_task_on_core
from repro.resilience.failures import (
    CORRUPT_CHECKPOINT,
    DROP_MIGRATION,
    FLAKE_CORE,
    KILL_CORE,
    CoreFailureInjector,
    DesFailure,
    DesFailurePlan,
    FailureEvent,
)
from repro.resilience.policy import DEFAULT_RETRY_POLICY, ResilienceStats, RetryPolicy
from repro.resilience.seeds import ENV_SEED, replay_hint, resolve_seed

__all__ = [
    "CORRUPT_CHECKPOINT",
    "Checkpoint",
    "CoreFailureInjector",
    "DEFAULT_RETRY_POLICY",
    "DROP_MIGRATION",
    "DesFailure",
    "DesFailurePlan",
    "ENV_SEED",
    "FLAKE_CORE",
    "FailureEvent",
    "KILL_CORE",
    "ResilienceStats",
    "RetryPolicy",
    "TaskExecution",
    "replay_hint",
    "resolve_seed",
    "run_task_on_core",
]
