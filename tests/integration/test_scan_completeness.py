"""Static completeness vs lazy rewriting: two ways to cover gap code.

The same indirect-only vector code can be handled either by the
address-taken scan heuristic (statically, zero runtime faults) or by
Chimera's lazy runtime rewriting (one fault, then patched).  Both must
produce identical program results; the difference shows up only in the
runtime statistics — a nice controlled ablation of §4.1's completeness
story.
"""

import pytest

from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC
from repro.sim.machine import Core, Kernel


@pytest.fixture
def gap_binary():
    b = ProgramBuilder("gap")
    b.add_words("buf", [5, 6] + [0] * 8)
    b.add_words("slot", [0])
    b.set_text("""
_start:
    la t0, hidden
    li t1, {slot}
    sd t0, 0(t1)
    li a0, {buf}
    li a1, 2
    ld t0, 0(t1)
    jalr t0
    li a7, 93
    li a0, 0
    ecall
    .word 0xffffffff
hidden:
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    ret
""")
    return b.build()


def run_rewritten(binary, rewriter):
    result = rewriter.rewrite(binary, RV64GC)
    kernel = Kernel()
    runtime = ChimeraRuntime(result.binary, rewriter=rewriter, original=binary)
    runtime.install(kernel)
    proc = make_process(result.binary)
    res = kernel.run(proc, Core(0, RV64GC))
    buf = binary.symbol_addr("buf")
    values = [proc.space.read_u64(buf + 8 * i) for i in range(2)]
    return res, runtime, values, result


class TestCompletenessPaths:
    def test_lazy_path_pays_one_runtime_rewrite(self, gap_binary):
        res, runtime, values, result = run_rewritten(gap_binary, ChimeraRewriter())
        assert res.ok
        assert values == [10, 12]
        assert result.stats.trampolines == 0  # statically invisible
        assert runtime.stats.runtime_rewrites >= 1

    def test_address_taken_path_is_fault_free(self, gap_binary):
        rewriter = ChimeraRewriter(scan_address_taken=True)
        res, runtime, values, result = run_rewritten(gap_binary, rewriter)
        assert res.ok
        assert values == [10, 12]
        assert result.stats.trampolines >= 1  # found statically
        assert runtime.stats.runtime_rewrites == 0
        assert runtime.stats.deterministic_faults == 0

    def test_both_paths_agree_exactly(self, gap_binary):
        _, _, lazy_values, _ = run_rewritten(gap_binary, ChimeraRewriter())
        _, _, static_values, _ = run_rewritten(
            gap_binary, ChimeraRewriter(scan_address_taken=True)
        )
        assert lazy_values == static_values
