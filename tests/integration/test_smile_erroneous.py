"""Erroneous-execution recovery: real indirect jumps into SMILE interiors.

These are the paper's P1/P2/P3 scenarios (Fig. 2/4) driven end-to-end:
a function pointer stored in the data segment targets an instruction
that the rewriter later overwrote with (part of) a SMILE trampoline.
The jump must raise a *deterministic* fault, and the runtime must
redirect it so the program's semantics are preserved.
"""

import pytest

from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.machine import Core, Kernel


def build_erroneous_jump_binary():
    """A program whose second phase jumps straight at the *neighbor* of a
    vector instruction — an address that after rewriting sits inside a
    SMILE trampoline (the P1 jalr slot or a mid-parcel)."""
    b = ProgramBuilder("err")
    b.add_words("buf", [10, 20] + [0] * 8)
    b.add_words("out", [0, 0])
    b.set_text("""
_start:
    # Phase 1: normal pass through the vector episode.
    li a0, {buf}
    li a1, 2
    jal episode
    # Phase 2: jump directly at the episode's SECOND instruction (the
    # vle64), exactly what an old function pointer could do.  After
    # rewriting, that address is the interior of a SMILE trampoline.
    la t0, ep_second
    li a5, 1            # marks the erroneous-entry pass
    jalr t0
    li t1, {out}
    sd a4, 0(t1)
    li a7, 93
    li a0, 0
    ecall

episode:
    vsetvli t0, a1, e64
ep_second:
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    addi a4, a4, 1
    ret
""")
    b.mark_function("episode")
    return b.build()


class TestErroneousEntryRecovery:
    def test_p1_style_entry_recovers_with_correct_semantics(self):
        binary = build_erroneous_jump_binary()
        rewriter = ChimeraRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        # ep_second must be covered by a trampoline window.
        ep_second = binary.symbol_addr("ep_second")
        runtime = ChimeraRuntime(result.binary, rewriter=rewriter, original=binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok, res.fault
        # Both passes ran the episode tail: a4 == 2.
        assert proc.space.read_u64(binary.symbol_addr("out")) == 2
        # Phase 1: buf doubled once; phase 2 doubled it again (entry at
        # the vle64 still executes the whole remaining episode).
        buf = binary.symbol_addr("buf")
        assert proc.space.read_u64(buf) == 40
        assert proc.space.read_u64(buf + 8) == 80
        # The recovery was a deterministic-fault redirect, not a trap.
        assert runtime.stats.deterministic_faults >= 1

    def test_every_interior_boundary_faults_deterministically(self):
        """Force the pc onto every fault-table key: each must raise a
        deterministic fault (SIGSEGV-exec via gp, or SIGILL) and recover."""
        binary = build_erroneous_jump_binary()
        rewriter = ChimeraRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        runtime = ChimeraRuntime(result.binary)
        table = dict(runtime.fault_table)
        assert table, "rewrite produced no fault-table entries"
        for key, redirect in table.items():
            kernel = Kernel()
            runtime2 = ChimeraRuntime(result.binary)
            runtime2.install(kernel)
            proc = make_process(result.binary)
            cpu = kernel.make_cpu(proc, Core(0, RV64GC))
            cpu.pc = key  # simulate the erroneous indirect jump
            from repro.sim.faults import SimFault

            try:
                for _ in range(10):
                    cpu.step()
                    if cpu.pc == redirect:
                        break
            except SimFault as fault:
                handled = runtime2.handle_fault(kernel, proc, cpu, fault)
                assert handled, f"key {key:#x}: fault {fault} not recovered"
            assert cpu.pc == redirect or runtime2.stats.deterministic_faults >= 1

    def test_partial_jalr_with_abi_gp_faults_into_data(self):
        """Entering at a trampoline's jalr with the ABI gp must raise an
        exec fault inside the (non-executable) data segment."""
        from repro.elf.binary import Perm
        from repro.isa.decoding import decode
        from repro.isa.registers import Reg
        from repro.sim.faults import SegmentationFault

        binary = build_erroneous_jump_binary()
        result = ChimeraRewriter().rewrite(binary, RV64GC)
        text = result.binary.text
        # Find a SMILE jalr: scan patched text for jalr gp, imm(gp).
        jalr_addr = None
        for key in dict(result.fault_table):
            try:
                instr = decode(text.data, key - text.addr, addr=key)
            except Exception:
                continue
            if instr.mnemonic == "jalr" and instr.rs1 == int(Reg.GP):
                jalr_addr = key
                break
        if jalr_addr is None:
            pytest.skip("no P1-style boundary in this layout")
        proc = make_process(result.binary)
        kernel = Kernel()
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        cpu.pc = jalr_addr
        with pytest.raises(SegmentationFault) as exc:
            for _ in range(2):
                cpu.step()
        assert exc.value.access == "exec"
        seg = proc.space.segment_at(exc.value.addr)
        assert seg is not None and Perm.X not in seg.perm
        # And gp now holds the return address the handler derives P1 from.
        assert cpu.get_reg(Reg.GP) == jalr_addr + 4
