"""``python -m repro serve`` — the asyncio batch translation server.

One process, three moving parts:

* the **event loop** accepts local connections (unix socket or
  TCP-on-localhost) and speaks :mod:`repro.service.protocol`; it never
  runs pipeline work, so the server stays responsive while every core
  is busy verifying;
* a small **job-thread pool** drives
  :func:`repro.core.pipeline.run_job` for each admitted job; each job's
  per-region fan-out goes through the PR 6 fault-isolated *process*
  pool, sized by one shared
  :class:`~repro.core.procpool.WorkerSlotArbiter` so concurrent jobs
  split the machine fairly instead of oversubscribing it;
* the **sharded cache** (:class:`~repro.core.pipeline.CacheLayout`)
  deduplicates: a submit whose release key is already on disk is a
  *warm* hit, one whose key is currently being built is *coalesced*
  onto the in-flight run — a batch of duplicate binaries performs
  exactly one rewrite+verify no matter how many clients race.

Failure domains are per job: a pipeline crash becomes a structured
:class:`~repro.resilience.failures.JobFault` streamed to every waiter
(the server stays up), and a key that crashes
:data:`POISON_THRESHOLD` times is refused on admission until the
server restarts — one poisoned binary can never take the service down
or monopolize its workers.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.core.pipeline import (
    CacheLayout,
    PipelineResult,
    RewriteJob,
    release_key,
    run_job,
)
from repro.core.procpool import WorkerSlotArbiter
from repro.resilience.failures import (
    JOB_CRASH,
    JOB_DEADLINE,
    JOB_OVERLOADED,
    JOB_POISONED,
    JOB_REJECTED,
    DeadlineExceededError,
    JobFault,
)
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL,
    FrameTooLargeError,
    ProtocolError,
    read_message,
    validate_submit,
    write_message,
)
from repro.telemetry import current as telemetry_current

#: Crashing runs per release key before the key is refused on admission.
POISON_THRESHOLD = 2


class JobServiceError(RuntimeError):
    """Carries a :class:`JobFault` across the job future boundary."""

    def __init__(self, fault: JobFault):
        super().__init__(str(fault))
        self.fault = fault


@dataclass
class ServiceStats:
    """The service's observable ledger (mirrored into telemetry).

    Counters only move on the event-loop thread, so readers (the
    ``stats`` op, the tests) never see a torn snapshot.
    """

    jobs_accepted: int = 0
    jobs_rejected: int = 0
    jobs_quarantined: int = 0
    #: Followers attached to an in-flight run of the same release key.
    jobs_deduped_inflight: int = 0
    #: Runs satisfied by a published cache entry (warm hits).
    jobs_deduped_cache: int = 0
    #: Cold runs that actually rewrote + verified.
    rewrites: int = 0
    jobs_failed: int = 0
    jobs_completed: int = 0
    shard_hits: int = 0
    shard_misses: int = 0
    #: Leaders refused at admission because both the in-flight budget
    #: and the wait queue were full (each carried ``retry_after_ms``).
    jobs_shed: int = 0
    #: Jobs that died on their end-to-end ``deadline_ms`` (queued,
    #: coalesced, or mid-pipeline).
    deadline_exceeded: int = 0
    #: Connections evicted by the per-connection idle/read deadline.
    slow_client_evictions: int = 0
    #: Terminal result/error events whose client was already gone —
    #: observed, never silently dropped.
    orphaned_results: int = 0
    started_at: float = field(default_factory=time.time)

    @property
    def queue_depth(self) -> int:
        return self.jobs_accepted - self.jobs_completed

    def as_dict(self) -> dict:
        data = {k: v for k, v in vars(self).items() if k != "started_at"}
        data["queue_depth"] = self.queue_depth
        data["uptime_seconds"] = round(time.time() - self.started_at, 3)
        return data


@dataclass
class _JobRecord:
    """What one settled run hands every waiter."""

    key: str
    cache_hit: bool
    ok: bool
    releasable: bool
    counts: dict
    seconds: float
    report_json: str


class RewriteService:
    """The batch server.  See the module docstring for the shape."""

    def __init__(
        self,
        layout: CacheLayout,
        *,
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
        oracle_trials: Optional[int] = None,
        region_timeout: Optional[float] = None,
        job_threads: Optional[int] = None,
        poison_threshold: int = POISON_THRESHOLD,
        max_inflight: Optional[int] = None,
        max_queue: int = 0,
        idle_timeout: Optional[float] = None,
    ):
        self.layout = layout
        #: Machine-wide verification-worker budget, shared fairly.
        total = jobs if jobs is not None else (os.cpu_count() or 1)
        self.worker_budget = max(1, total)
        self.slots = WorkerSlotArbiter(self.worker_budget)
        #: Per-job executor override (None = pipeline auto-select:
        #: process when the job gets more than one worker slot).
        self.executor = executor
        #: Server-side override pinning every job's oracle trials (the
        #: cache key depends on it; a fleet wants one policy).
        self.oracle_trials = oracle_trials
        self.region_timeout = region_timeout
        self.poison_threshold = poison_threshold
        #: Bounded admission: at most ``max_inflight`` leader runs
        #: execute concurrently and at most ``max_queue`` more may wait;
        #: past both, new leaders are *shed* with a structured
        #: ``job-overloaded`` fault carrying a load-derived
        #: ``retry_after_ms`` hint.  None = unbounded (PR 8 behavior).
        #: Followers coalescing onto an in-flight key are never shed —
        #: they add no pipeline work.
        self.max_inflight = max_inflight if (max_inflight or 0) > 0 else None
        self.max_queue = max(0, max_queue)
        #: Per-connection idle/read deadline (seconds): a connection
        #: with no outstanding jobs that stays silent — or stalls
        #: mid-frame — past this long is evicted (slow-loris defense).
        #: Connections waiting on accepted jobs are never evicted.
        self.idle_timeout = idle_timeout
        self._admit = (asyncio.Semaphore(self.max_inflight)
                       if self.max_inflight is not None else None)
        #: Leader runs currently executing / waiting for a slot.
        self._running = 0
        self._run_queued = 0
        #: EWMA of completed-run seconds, feeding the retry_after hint.
        self._ewma_seconds = 0.0
        self.stats = ServiceStats()
        self._threads = ThreadPoolExecutor(
            max_workers=job_threads or min(8, self.worker_budget + 1),
            thread_name_prefix="repro-serve-job")
        self._inflight: dict[str, asyncio.Future] = {}
        #: Crash tally and quarantine memo, keyed by release key.
        self._failures: dict[str, int] = {}
        self._poisoned: dict[str, JobFault] = {}
        #: key -> [(connection, client job id), ...] progress watchers.
        self._watchers: dict[str, list] = {}
        self._stop = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._socket_path: Optional[str] = None
        self.address: Optional[str] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self, *, socket_path: Optional[str] = None,
                    host: str = "127.0.0.1",
                    port: Optional[int] = None) -> str:
        """Bind and listen; returns the printable address."""
        if socket_path is not None:
            # A stale socket file from a dead server blocks the bind;
            # unlink it (a live server would still hold the listener).
            try:
                os.unlink(socket_path)
            except FileNotFoundError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=socket_path,
                limit=MAX_MESSAGE_BYTES)
            self._socket_path = socket_path
            self.address = f"unix:{socket_path}"
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=host, port=port or 0,
                limit=MAX_MESSAGE_BYTES)
            bound = self._server.sockets[0].getsockname()
            self.address = f"tcp:{bound[0]}:{bound[1]}"
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op (or :meth:`shutdown`) lands,
        then drain every in-flight job before returning."""
        if self._server is None:
            raise RuntimeError("call start() first")
        try:
            async with self._server:
                await self._stop.wait()
                self._server.close()
                await self._server.wait_closed()
            pending = [f for f in self._inflight.values() if not f.done()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self._threads.shutdown(wait=True)
        finally:
            # Python < 3.13 leaves the unix socket file behind.
            if self._socket_path is not None:
                try:
                    os.unlink(self._socket_path)
                except OSError:
                    pass

    def shutdown(self) -> None:
        self._stop.set()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(writer)
        tasks: set[asyncio.Task] = set()
        try:
            await conn.send({"event": "hello", "protocol": PROTOCOL,
                             "shards": self.layout.shards,
                             "workers": self.worker_budget})
            while True:
                try:
                    # The idle deadline only arms while the connection
                    # has no outstanding jobs: a client quietly waiting
                    # for a long verification is never evicted, a
                    # slow-loris trickling half a frame (or just
                    # squatting) is.
                    timeout = self.idle_timeout if not tasks else None
                    if timeout is not None:
                        message = await asyncio.wait_for(
                            read_message(reader), timeout)
                    else:
                        message = await read_message(reader)
                except asyncio.TimeoutError:
                    self.stats.slow_client_evictions += 1
                    telemetry = telemetry_current()
                    if telemetry.enabled:
                        telemetry.metrics.inc(
                            "service.slow_client_evictions")
                    await conn.send({"event": "error", "id": None,
                                     "fault": JobFault(
                                         binary="<connection>",
                                         fault=JOB_REJECTED,
                                         detail=f"idle past "
                                         f"{timeout:g}s; evicted"
                                     ).as_dict()})
                    break
                except FrameTooLargeError as exc:
                    # Past the frame ceiling there is no trustworthy
                    # resync point: answer and tear down.
                    await conn.send({"event": "error", "id": None,
                                     "fault": JobFault(
                                         binary="<frame>",
                                         fault=JOB_REJECTED,
                                         detail=str(exc)).as_dict()})
                    break
                except ProtocolError as exc:
                    # Parse-level garbage on one line: readuntil already
                    # consumed through the newline, so the stream is
                    # still frame-synchronized — answer and keep
                    # serving this connection.  (A mid-frame EOF lands
                    # here too; the next read sees clean EOF and exits.)
                    await conn.send({"event": "error", "id": None,
                                     "fault": JobFault(
                                         binary="<frame>",
                                         fault=JOB_REJECTED,
                                         detail=str(exc)).as_dict()})
                    continue
                except (ConnectionError, OSError):
                    # The peer reset mid-read (e.g. aborted its
                    # transport).  Same shape as EOF: any in-flight
                    # submits keep running and their terminal sends are
                    # tallied as orphaned results.
                    break
                if message is None:
                    break
                op = message.get("op")
                if op == "submit":
                    task = asyncio.ensure_future(
                        self._handle_submit(conn, message))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif op == "stats":
                    await conn.send({"event": "stats",
                                     "stats": self.stats.as_dict(),
                                     "inflight": len(self._inflight),
                                     "running": self._running,
                                     "queued": self._run_queued,
                                     "poisoned": len(self._poisoned)})
                elif op == "ping":
                    await conn.send({"event": "pong"})
                elif op == "shutdown":
                    await conn.send({"event": "bye"})
                    self.shutdown()
                    break
                else:
                    await conn.send({"event": "error", "id": message.get("id"),
                                     "fault": JobFault(
                                         binary="<op>",
                                         fault=JOB_REJECTED,
                                         detail=f"unknown op {op!r}").as_dict()})
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            conn.closed = True
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- the submit path ----------------------------------------------------

    async def _handle_submit(self, conn: "_Connection", message: dict) -> None:
        telemetry = telemetry_current()
        loop = asyncio.get_running_loop()
        job_id = message.get("id")
        try:
            spec = validate_submit(message)
        except ProtocolError as exc:
            self.stats.jobs_rejected += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_rejected")
            await self._send_terminal(conn, {
                "event": "error", "id": job_id,
                "fault": JobFault(
                    binary=str(message.get("workload")
                               or message.get("path")),
                    fault=JOB_REJECTED,
                    detail=str(exc)).as_dict()})
            return
        # The end-to-end clock starts at validation: queue time,
        # coalesce time, and pipeline time all spend the same budget.
        deadline = (time.monotonic() + spec["deadline_ms"] / 1000.0
                    if spec["deadline_ms"] is not None else None)
        name = spec["workload"] or spec["path"]
        try:
            job, key = await loop.run_in_executor(
                self._threads, self._resolve, spec)
        except Exception as exc:  # noqa: BLE001 - structured, never raw
            self.stats.jobs_rejected += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_rejected")
            await self._send_terminal(conn, {
                "event": "error", "id": spec["id"],
                "fault": JobFault(
                    binary=name, fault=JOB_REJECTED,
                    detail=f"{type(exc).__name__}: {exc}").as_dict()})
            return

        poisoned = self._poisoned.get(key)
        if poisoned is not None:
            self.stats.jobs_quarantined += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_quarantined")
            await self._send_terminal(conn, {
                "event": "error", "id": spec["id"],
                "fault": poisoned.as_dict()})
            return

        follower = key in self._inflight
        if (not follower and self.max_inflight is not None
                and self._running >= self.max_inflight
                and self._run_queued >= self.max_queue):
            # Bounded admission: a new leader past both budgets is shed
            # *before* it is accepted, with a load-derived retry hint.
            # Followers never reach here — coalescing adds no work, so
            # a duplicate flood can never be shed into thrashing.
            self.stats.jobs_shed += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_shed")
            retry_after = self._retry_after_ms()
            await self._send_terminal(conn, {
                "event": "error", "id": spec["id"],
                "fault": JobFault(
                    binary=name, fault=JOB_OVERLOADED,
                    detail=(f"{self._running} running + "
                            f"{self._run_queued} queued >= "
                            f"{self.max_inflight}+{self.max_queue}; "
                            f"retry in {retry_after}ms"),
                    key=key, retry_after_ms=retry_after).as_dict()})
            return

        self.stats.jobs_accepted += 1
        if telemetry.enabled:
            telemetry.metrics.inc("service.jobs_accepted")
            telemetry.metrics.gauge("service.queue_depth",
                                    self.stats.queue_depth)
        shard = self.layout.shard_name(key) if self.layout.shards else "flat"
        await conn.send({"event": "accepted", "id": spec["id"], "key": key,
                         "shard": shard})

        if follower:
            self.stats.jobs_deduped_inflight += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_deduped", how="inflight")
            future = self._inflight[key]
        else:
            future = loop.create_future()
            # Abandoned waiters (deadline-detached followers) must not
            # leave an "exception never retrieved" warning behind.
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None)
            self._inflight[key] = future
            asyncio.ensure_future(self._drive(key, job, name, future,
                                              deadline))
        self._watchers.setdefault(key, []).append((conn, spec["id"]))
        try:
            if deadline is not None:
                # shield(): a follower timing out detaches *itself*;
                # the underlying run — and every other waiter — is
                # untouched.  The leader's own deadline rides inside
                # _drive, so cancelling the wait never cancels the run.
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise asyncio.TimeoutError
                record: _JobRecord = await asyncio.wait_for(
                    asyncio.shield(future), remaining)
            else:
                record = await future
        except asyncio.TimeoutError:
            self.stats.deadline_exceeded += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.deadline_exceeded")
            await self._send_terminal(conn, {
                "event": "error", "id": spec["id"],
                "fault": JobFault(
                    binary=name, fault=JOB_DEADLINE,
                    detail=(f"deadline_ms={spec['deadline_ms']} expired "
                            "waiting for the coalesced run"),
                    key=key).as_dict()})
            return
        except JobServiceError as exc:
            if exc.fault.fault == JOB_DEADLINE:
                self.stats.deadline_exceeded += 1
                if telemetry.enabled:
                    telemetry.metrics.inc("service.deadline_exceeded")
            await self._send_terminal(conn, {
                "event": "error", "id": spec["id"],
                "fault": exc.fault.as_dict()})
            return
        finally:
            # Every admitted job completes exactly once (runner and
            # followers alike), success or fault — queue_depth drains.
            self.stats.jobs_completed += 1
            if telemetry.enabled:
                telemetry.metrics.gauge("service.queue_depth",
                                        self.stats.queue_depth)
            watchers = self._watchers.get(key)
            if watchers is not None:
                try:
                    watchers.remove((conn, spec["id"]))
                except ValueError:
                    pass
                if not watchers:
                    self._watchers.pop(key, None)
        cache = ("coalesced" if follower
                 else "warm" if record.cache_hit else "cold")
        await self._send_terminal(conn, {
            "event": "result", "id": spec["id"], "key": key,
            "shard": shard, "cache": cache, "ok": record.ok,
            "releasable": record.releasable, "counts": record.counts,
            "seconds": round(record.seconds, 6),
            "report_json": record.report_json,
        })

    async def _drive(self, key: str, job: RewriteJob, name: str,
                     future: asyncio.Future,
                     deadline: Optional[float] = None) -> None:
        """Own one run: wait for an admission slot, thread off the
        pipeline, settle every waiter, keep the books.  Runs on the
        loop; the pipeline does not."""
        telemetry = telemetry_current()
        loop = asyncio.get_running_loop()

        def on_progress(stage: str, **info) -> None:
            # Fires on the job thread; marshal to the loop.
            loop.call_soon_threadsafe(self._fanout_progress, key, stage, info)

        def settle_fault(fault: JobFault) -> None:
            self.stats.jobs_failed += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_failed")
            self._inflight.pop(key, None)
            future.set_exception(JobServiceError(fault))

        if self._admit is not None:
            self._run_queued += 1
            try:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise asyncio.TimeoutError
                    await asyncio.wait_for(self._admit.acquire(), remaining)
                else:
                    await self._admit.acquire()
            except asyncio.TimeoutError:
                # Expired while queued: the slot was never consumed, so
                # jobs behind this one are unaffected.  Not a crash —
                # no poison tally.
                settle_fault(JobFault(
                    binary=name, fault=JOB_DEADLINE,
                    detail="deadline expired waiting for an admission "
                           "slot", key=key))
                return
            finally:
                self._run_queued -= 1
        self._running += 1
        if deadline is not None:
            job = dataclasses.replace(job, deadline=deadline)
        t0 = time.perf_counter()
        try:
            pipe: PipelineResult = await loop.run_in_executor(
                self._threads, self._run_sync, job, key, on_progress)
        except DeadlineExceededError as exc:
            # The pipeline noticed the expiry between regions; the run
            # journal keeps everything settled so far, so a retry of
            # this key resumes.  The key's health is unaffected.
            settle_fault(JobFault(
                binary=name, fault=JOB_DEADLINE,
                detail=str(exc), key=key))
            return
        except Exception as exc:  # noqa: BLE001 - the job failure domain
            failures = self._failures.get(key, 0) + 1
            self._failures[key] = failures
            quarantined = failures >= self.poison_threshold
            fault = JobFault(
                binary=name, fault=JOB_CRASH,
                detail=f"{type(exc).__name__}: {exc}", key=key,
                failures=failures, quarantined=quarantined)
            if quarantined:
                self._poisoned[key] = JobFault(
                    binary=name, fault=JOB_POISONED,
                    detail=(f"release key crashed {failures} run(s); "
                            "refused until restart"),
                    key=key, failures=failures, quarantined=True)
            settle_fault(fault)
            return
        finally:
            self._running -= 1
            if self._admit is not None:
                self._admit.release()
        seconds = time.perf_counter() - t0
        # EWMA of run latency feeds the retry_after_ms shed hint.
        alpha = 0.3
        self._ewma_seconds = (seconds if self._ewma_seconds == 0.0
                              else alpha * seconds
                              + (1 - alpha) * self._ewma_seconds)
        shard = self.layout.shard_name(key) if self.layout.shards else "flat"
        if pipe.cache_hit:
            self.stats.shard_hits += 1
            self.stats.jobs_deduped_cache += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.shard_hits", shard=shard)
                telemetry.metrics.inc("service.jobs_deduped", how="cache")
        else:
            self.stats.shard_misses += 1
            self.stats.rewrites += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.shard_misses", shard=shard)
                telemetry.metrics.inc("service.rewrites")
        self._failures.pop(key, None)
        self._inflight.pop(key, None)
        future.set_result(_JobRecord(
            key=key, cache_hit=pipe.cache_hit, ok=pipe.ok,
            releasable=pipe.releasable,
            counts=pipe.report.counts(), seconds=seconds,
            report_json=pipe.report.to_json()))

    # -- admission helpers --------------------------------------------------

    def _retry_after_ms(self) -> int:
        """Load-derived retry hint for a shed job: roughly how long
        until the current backlog has drained one wave, bounded to
        [50ms, 30s] so a cold server never tells a client "now" and a
        thrashing one never tells it "tomorrow"."""
        ewma = self._ewma_seconds or 0.25
        backlog = self._running + self._run_queued + 1
        waves = backlog / max(1, self.max_inflight or 1)
        return max(50, min(30_000, int(1000.0 * ewma * waves)))

    async def _send_terminal(self, conn: "_Connection",
                             message: dict) -> None:
        """Send a terminal result/error event; if the client is already
        gone the completed work is counted as an orphaned result —
        observed in the ledger, never silently dropped."""
        delivered = await conn.send(message)
        if not delivered:
            self.stats.orphaned_results += 1
            telemetry = telemetry_current()
            if telemetry.enabled:
                telemetry.metrics.inc("service.orphaned_results")

    # -- job-thread halves --------------------------------------------------

    def _resolve(self, spec: dict) -> tuple[RewriteJob, str]:
        """Build the job's binary and release key (job thread)."""
        from repro.elf.fileformat import load_binary_file
        from repro.telemetry.pipeline import resolve_workload

        if spec["workload"] is not None:
            binary = resolve_workload(spec["workload"],
                                      variant=spec["variant"],
                                      scale=spec["scale"])
        else:
            binary = load_binary_file(spec["path"])
        trials = (self.oracle_trials if self.oracle_trials is not None
                  else spec["oracle_trials"])
        job = RewriteJob(
            binary=binary,
            target=spec["target"],
            seed=spec["seed"],
            oracle_trials=trials,
            jobs=self.worker_budget,
            executor=self.executor,
            region_timeout=self.region_timeout,
        )
        return job, release_key(job)

    def _run_sync(self, job: RewriteJob, key: str, on_progress):
        """The pipeline proper (job thread)."""
        return run_job(job, cache=self.layout, slots=self.slots,
                       job_id=key, on_progress=on_progress)

    # -- progress fan-out ---------------------------------------------------

    def _fanout_progress(self, key: str, stage: str, info: dict) -> None:
        for conn, job_id in list(self._watchers.get(key, ())):
            message = {"event": "progress", "id": job_id, "key": key,
                       "stage": stage, **info}
            asyncio.ensure_future(conn.send_quiet(message))


class _Connection:
    """One client stream; writes serialized so concurrent jobs on the
    same connection never interleave frames."""

    def __init__(self, writer):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, message: dict) -> bool:
        """Send one frame; False when the client is (or just went)
        away.  Callers of terminal events use the return value to
        count orphaned results instead of dropping them silently."""
        if self.closed:
            return False
        async with self.lock:
            try:
                await write_message(self.writer, message)
            except (ConnectionError, OSError):
                self.closed = True
                return False
        return True

    async def send_quiet(self, message: dict) -> None:
        """Best-effort send (progress events to maybe-gone clients)."""
        try:
            await self.send(message)
        except Exception:  # noqa: BLE001 - progress is best-effort
            self.closed = True


async def serve(
    layout: CacheLayout,
    *,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    oracle_trials: Optional[int] = None,
    region_timeout: Optional[float] = None,
    max_inflight: Optional[int] = None,
    max_queue: int = 0,
    idle_timeout: Optional[float] = None,
    ready=None,
) -> ServiceStats:
    """Run a :class:`RewriteService` until shutdown; returns its stats.

    ``ready`` (optional callable) fires with the bound address once the
    server is listening — the CLI prints it, tests latch onto it.
    """
    service = RewriteService(
        layout, jobs=jobs, executor=executor, oracle_trials=oracle_trials,
        region_timeout=region_timeout, max_inflight=max_inflight,
        max_queue=max_queue, idle_timeout=idle_timeout)
    address = await service.start(socket_path=socket_path, host=host,
                                  port=port)
    if ready is not None:
        ready(address)
    await service.serve_until_shutdown()
    return service.stats
