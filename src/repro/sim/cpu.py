"""The interpreter core: fetch, decode (cached), execute, account cycles.

One :class:`Cpu` models one hart running one task.  Its
:class:`~repro.isa.extensions.IsaProfile` is the ISAX capability mask:
executing an instruction from an extension the profile lacks raises
``IllegalInstructionFault(kind="unsupported-extension")`` — the
architectural event FAM migrates on and Chimera's runtime rewriter
repairs.

Faults propagate as exceptions with ``cpu.pc`` still pointing at the
faulting instruction; the simulated kernel (:mod:`repro.sim.machine`)
catches them, adjusts state, and resumes by calling :meth:`Cpu.run`
again.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Optional

from repro.elf.binary import Perm
from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.extensions import Extension, IsaProfile, RV64GCV
from repro.isa.fields import sign_extend, to_unsigned64
from repro.isa.instructions import Instruction
from repro.sim.cost import CostModel, DEFAULT_ARCH
from repro.sim.faults import (
    BreakpointTrap,
    EcallTrap,
    IllegalInstructionFault,
    SimFault,
    SimulationLimitExceeded,
)
from repro.sim.memory import AddressSpace
from repro.sim.vector import VectorUnit

_MASK64 = 0xFFFFFFFFFFFFFFFF
_MASK32 = 0xFFFFFFFF

#: Mnemonics that may redirect control flow; they terminate superblocks.
#: ecall/ebreak raise, so they end a block the same way a jump does.
_CTRL_MNEMONICS = frozenset({
    "jal", "jalr", "beq", "bne", "blt", "bge", "bltu", "bgeu",
    "ecall", "ebreak",
    "c.j", "c.jr", "c.jalr", "c.beqz", "c.bnez", "c.ebreak",
})

#: Straight-line run length cap per superblock.
_MAX_BLOCK_OPS = 128

#: Conditional branches: inside a trace they become guards whose
#: recorded direction is checked on every pass.
_COND_BRANCHES = frozenset({
    "beq", "bne", "blt", "bge", "bltu", "bgeu", "c.beqz", "c.bnez",
})

#: Indirect jumps: inside a trace the computed target is guarded
#: against the recorded one.
_INDIRECT_JUMPS = frozenset({"jalr", "c.jr", "c.jalr"})

#: Trace-tier shape caps: blocks chained per trace / flat ops per trace.
_MAX_TRACE_BLOCKS = 64
_MAX_TRACE_OPS = 1024

#: Recording attempts per entry pc before the tier gives up on it (a
#: chain that keeps hitting a syscall or the instruction budget).
_MAX_TRACE_ATTEMPTS = 4

#: Default executions of a cached superblock before its entry pc is
#: considered hot and a trace is recorded across its branches.
DEFAULT_TRACE_THRESHOLD = 16


class _Trace:
    """One recorded hot trace: superblocks chained across taken branches.

    ``ops`` is a flat list of ``(pc, nxt, expected, instr, handler,
    cost, cost_taken)`` — ``expected`` is the pc the recording observed
    execution continuing at, so every former branch site doubles as a
    guard: an op whose handler leaves ``cpu.pc`` anywhere other than
    ``expected`` side-exits the trace with the architectural state
    already exact (the op retired, the pc is wherever the branch really
    went).  ``loops`` marks a trace whose last op returns to ``entry``;
    those replay in a closed loop without re-entering the dispatcher,
    revalidating segment versions at every loop edge.
    """

    __slots__ = ("entry", "ops", "n", "pcs", "ranges", "versions",
                 "loops", "fn", "cyc")

    def __init__(self, entry, ops, ranges, versions, loops):
        self.entry = entry
        self.ops = ops
        self.n = len(ops)
        self.pcs = tuple(op[0] for op in ops)
        self.ranges = ranges
        self.versions = versions
        self.loops = loops
        self.fn = None   # exec-compiled pass function (trace_compile)
        self.cyc = None  # per-op prefix cycle sums (compiled fault path)


def _s(value: int) -> int:
    """Unsigned-64 storage -> signed value."""
    return value - 0x1_0000_0000_0000_0000 if value & 0x8000_0000_0000_0000 else value


class Cpu:
    """A single simulated hart."""

    def __init__(
        self,
        space: AddressSpace,
        profile: IsaProfile = RV64GCV,
        cost_model: Optional[CostModel] = None,
        name: str = "hart0",
        block_cache: bool = True,
        trace_cache: bool = True,
        trace_threshold: int = DEFAULT_TRACE_THRESHOLD,
        trace_compile: bool = True,
    ):
        self.space = space
        self.profile = profile
        self.cost = cost_model or CostModel(DEFAULT_ARCH)
        self.name = name
        self.regs: list[int] = [0] * 32
        self.pc = 0
        self.vector = VectorUnit(vlen=self.cost.params.vlen)
        self.cycles = 0
        self.instret = 0
        #: pc of the most recently *retired* instruction; lets fault
        #: handlers attribute a fetch fault to the jump that caused it
        #: (e.g. a SMILE jalr whose gp was clobbered before recovery).
        self.last_pc: Optional[int] = None
        #: Optional per-retired-instruction hook (see repro.sim.trace).
        self.tracer = None
        #: Optional pre-fetch hook called with this cpu before every
        #: instruction; may raise a structured :class:`SimFault`.  The
        #: resilience layer arms it to kill/flake a core mid-task at a
        #: precise instruction boundary (nothing partially executed).
        self.step_hook: Optional[Callable[["Cpu"], None]] = None
        #: Optional hook called with (cpu, fault) for every SimFault that
        #: propagates out of :meth:`step`, after the faulting pc has been
        #: filled in.  The chaos harness installs an assertion here that
        #: ``fault.pc`` is never None once the CPU knows it.
        self.fault_hook: Optional[Callable[["Cpu", "SimFault"], None]] = None
        #: Counts of interesting dynamic events, keyed by name.
        self.counters: dict[str, int] = defaultdict(int)
        #: Optional address tags: executing a tagged address bumps the
        #: named counter (used to count e.g. ARMore trampoline bounces).
        self.tag_addrs: dict[int, str] = {}
        #: When True, decode-cache misses bump the ``decode_misses``
        #: counter.  Off by default — telemetry flips it on so existing
        #: tests asserting exact counter contents are unaffected.
        self.count_decode = False
        # decode cache: addr -> (instr, handler, tag, seg, seg_version)
        self._dcache: dict[int, tuple[Instruction, Callable, Optional[str], object, int]] = {}
        #: Superblock engine switch: when True, :meth:`run` executes
        #: straight-line runs from a basic-block cache; when any hook
        #: (step_hook/tracer/tag_addrs) is live it falls back to
        #: :meth:`step` so chaos/self-heal/telemetry semantics hold.
        self.block_cache = block_cache
        # superblock cache: entry pc -> (ops, seg, seg_version, start, end)
        # where ops = [(pc, next_pc, instr, handler, cost, cost_taken)].
        self._bcache: dict[int, tuple[list, object, int, int, int]] = {}
        #: Trace tier switch: when True (and the block cache is on), hot
        #: superblock entries are linked into cross-branch traces that
        #: replay without per-branch dispatch.  Requires the block cache;
        #: falls back to :meth:`step` under the same hook conditions.
        self.trace_cache = trace_cache and block_cache
        #: Cached-superblock executions at one entry pc before a trace
        #: is recorded from it.
        self.trace_threshold = max(1, trace_threshold)
        #: When True, registered traces are compiled to a single exec'd
        #: Python closure (one function call per trace pass); when False
        #: they run through the interpreted flat-op loop.
        self.trace_compile = trace_compile
        # trace cache: entry pc -> _Trace
        self._tcache: dict[int, _Trace] = {}
        # hot-block profiler: superblock entry pc -> cached-hit count
        self._hot_counts: dict[int, int] = {}
        # entry pc -> failed recording attempts (give up at the cap)
        self._trace_attempts: dict[int, int] = {}
        # faulting-op index, written by compiled trace passes on the way
        # out so the caller can reconstruct pc/instret/cycles exactly
        self._trace_ex = 0

    # -- register helpers --------------------------------------------------

    def get_reg(self, idx: int) -> int:
        """Read an integer register (x0 reads as 0)."""
        return self.regs[idx] if idx else 0

    def set_reg(self, idx: int, value: int) -> None:
        """Write an integer register (writes to x0 are discarded)."""
        if idx:
            self.regs[idx] = value & _MASK64

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named event counter."""
        self.counters[counter] += amount

    def flush_decode_cache(self) -> None:
        """Drop all cached decodes, superblocks, and traces (after code
        patching or an address-space view switch).  Hot counts reset too:
        they are keyed by pc and mean nothing across a view change."""
        self._dcache.clear()
        self._bcache.clear()
        self._tcache.clear()
        self._hot_counts.clear()
        self._trace_attempts.clear()

    def invalidate_code(self, addr: int, length: int) -> None:
        """Targeted invalidation after a code patch at ``[addr, addr+length)``.

        Evicts decode-cache entries and superblocks overlapping the
        patched range.  Surviving entries in the patched segment are
        re-validated in place when the segment advanced by exactly the
        one version bump this patch made — so a ranged patch costs only
        the overlapping entries, not the whole cache.  Correctness never
        depends on this being called: every cache probe checks the
        segment version and rebuilds stale entries lazily.
        """
        end = addr + length
        dcache = self._dcache
        for pc in [pc for pc, e in dcache.items()
                   if pc < end and pc + e[0].length > addr]:
            del dcache[pc]
        for pc, entry in dcache.items():
            instr, handler, tag, seg, version = entry
            if seg.contains(addr) and version == seg.version - 1:
                dcache[pc] = (instr, handler, tag, seg, seg.version)
        bcache = self._bcache
        for pc in [pc for pc, b in bcache.items()
                   if b[3] < end and b[4] > addr]:
            del bcache[pc]
        for pc, block in bcache.items():
            ops, seg, version, start, stop = block
            if seg.contains(addr) and version == seg.version - 1:
                bcache[pc] = (ops, seg, seg.version, start, stop)
        # Traces registered the code range of every constituent block:
        # evict exactly the traces whose chain overlaps the patch, then
        # revalidate survivors in the patched segment the same way the
        # block cache does (their recorded bytes are untouched).
        tcache = self._tcache
        stale = [pc for pc, t in tcache.items()
                 if any(s < end and e > addr for _sg, _v, s, e in t.ranges)]
        for pc in stale:
            del tcache[pc]
            self._trace_attempts.pop(pc, None)
        if stale:
            self.counters["traces_invalidated"] += len(stale)
        for t in tcache.values():
            for r in t.ranges:
                seg = r[0]
                if seg.contains(addr) and r[1] == seg.version - 1:
                    r[1] = seg.version
            for v in t.versions:
                seg = v[0]
                if seg.contains(addr) and v[1] == seg.version - 1:
                    v[1] = seg.version

    def snapshot_regs(self) -> list[int]:
        """Copy of the integer register file."""
        return list(self.regs)

    def hot_blocks(self, top: int = 0) -> list[tuple[int, int]]:
        """Hot-block histogram: (entry pc, cached executions), hottest
        first (ties broken by pc).  ``top`` limits the list; 0 = all."""
        items = sorted(self._hot_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return items[:top] if top else items

    # -- fetch/decode --------------------------------------------------------

    def _decode_at(self, pc: int) -> tuple[Instruction, Callable, Optional[str]]:
        cached = self._dcache.get(pc)
        if cached is not None:
            instr, handler, tag, seg, version = cached
            if seg.version == version:
                return instr, handler, tag
        seg = self.space.fetch_segment(pc)  # raises SegmentationFault(exec)
        if self.count_decode:
            self.bump("decode_misses")
        try:
            instr = decode(seg.data, pc - seg.base, addr=pc)
        except IllegalEncodingError as exc:
            raise IllegalInstructionFault(pc, exc.kind, str(exc)) from exc
        handler = _HANDLERS.get(instr.mnemonic)
        if handler is None:
            raise IllegalInstructionFault(pc, "unknown", f"no semantics for {instr.mnemonic}")
        if instr.extension not in self.profile.extensions:
            handler = _unsupported
        tag = self.tag_addrs.get(pc) if self.tag_addrs else None
        self._dcache[pc] = (instr, handler, tag, seg, seg.version)
        return instr, handler, tag

    # -- execution -----------------------------------------------------------

    def step(self) -> Instruction:
        """Execute one instruction; returns it.  Faults propagate.

        Every :class:`SimFault` leaving this method carries the faulting
        pc: raise sites that only know an address (memory faults) get it
        filled in here, where the pc is authoritative.
        """
        pc = self.pc
        try:
            if self.step_hook is not None:
                self.step_hook(self)
            instr, handler, tag = self._decode_at(pc)
            self.pc = pc + instr.length
            try:
                taken = handler(self, instr)
            except Exception:
                self.pc = pc  # leave pc at the faulting instruction
                raise
        except SimFault as fault:
            if fault.pc is None:
                fault.pc = pc
            if self.fault_hook is not None:
                self.fault_hook(self, fault)
            raise
        if tag is not None:
            self.counters[tag] = self.counters.get(tag, 0) + 1
        if self.tracer is not None:
            self.tracer(self, instr)
        self.last_pc = pc
        self.instret += 1
        self.cycles += self.cost.instruction_cost(instr, taken=bool(taken))
        return instr

    def run(self, max_instructions: int = 50_000_000) -> None:
        """Run until a fault propagates or the budget is exhausted.

        With :attr:`block_cache` on and no per-step hook live, execution
        goes through the superblock engine: straight-line runs are
        decoded once into a flat dispatch list and replayed in a tight
        loop with precomputed costs.  Any live ``step_hook``/``tracer``/
        ``tag_addrs`` drops back to :meth:`step` per instruction, so
        instrumented runs observe every architectural event.
        """
        step = self.step
        remaining = max_instructions
        if not self.block_cache:
            while remaining > 0:
                step()
                remaining -= 1
            raise SimulationLimitExceeded(max_instructions)
        bcache = self._bcache
        tcache = self._tcache
        tracing = self.trace_cache
        threshold = self.trace_threshold
        hot = self._hot_counts
        attempts = self._trace_attempts
        hits = 0
        thits = 0
        retired = 0
        try:
            while remaining > 0:
                if (self.step_hook is not None or self.tracer is not None
                        or self.tag_addrs):
                    step()
                    remaining -= 1
                    continue
                pc = self.pc
                if tracing:
                    trace = tcache.get(pc)
                    if trace is not None:
                        valid = True
                        for s, v in trace.versions:
                            if s.version != v:
                                valid = False
                                break
                        if valid:
                            thits += 1
                            # Keep the histogram live after promotion so
                            # ``hot_blocks`` reports real dispatch counts,
                            # not counts saturated at the threshold.
                            hot[pc] = hot.get(pc, 0) + 1
                            if trace.fn is not None and remaining >= trace.n:
                                executed = self._exec_trace_compiled(
                                    trace, remaining)
                            else:
                                executed = self._exec_trace(trace, remaining)
                            remaining -= executed
                            continue
                        del tcache[pc]
                        attempts.pop(pc, None)
                        self.counters["traces_invalidated"] += 1
                block = bcache.get(pc)
                if block is None or block[1].version != block[2]:
                    try:
                        block = self._build_block(pc)
                    except SimFault as fault:
                        if fault.pc is None:
                            fault.pc = pc
                        if self.fault_hook is not None:
                            self.fault_hook(self, fault)
                        raise
                else:
                    hits += 1
                    if tracing:
                        c = hot.get(pc)
                        c = 1 if c is None else c + 1
                        hot[pc] = c
                        if (c >= threshold and pc not in tcache
                                and attempts.get(pc, 0) < _MAX_TRACE_ATTEMPTS):
                            executed = self._record_trace(pc, remaining)
                            retired += executed
                            remaining -= executed
                            continue
                executed = self._exec_block(block[0], remaining)
                retired += executed
                remaining -= executed
        finally:
            if retired:
                self.counters["superblock_instret"] += retired
            if hits:
                self.counters["block_cache_hits"] += hits
            if thits:
                self.counters["trace_cache_hits"] += thits
        raise SimulationLimitExceeded(max_instructions)

    def _build_block(self, pc: int) -> tuple[list, object, int, int, int]:
        """Decode the straight-line run starting at *pc* into a superblock.

        The block ends at the first control-flow instruction, at the
        segment edge, at an instruction the profile cannot execute, or
        at the op cap.  A decode failure past the entry just ends the
        block early: execution reaches that pc architecturally and the
        fault is raised from there with the exact :meth:`step` protocol.
        """
        seg = self.space.fetch_segment(pc)  # raises SegmentationFault(exec)
        version = seg.version
        seg_end = seg.end
        instruction_cost = self.cost.instruction_cost
        ops: list = []
        cur = pc
        while len(ops) < _MAX_BLOCK_OPS:
            try:
                instr, handler, _tag = self._decode_at(cur)
            except SimFault:
                if ops:
                    break  # fault raised when execution actually gets there
                raise
            fn = handler
            if handler is not _unsupported:
                spec = _SPECIALIZERS.get(instr.mnemonic)
                if spec is not None:
                    fn = spec(instr) or handler
            nxt = cur + instr.length
            ops.append((cur, nxt, instr, fn,
                        instruction_cost(instr, taken=False),
                        instruction_cost(instr, taken=True)))
            if instr.mnemonic in _CTRL_MNEMONICS or handler is _unsupported:
                break
            cur = nxt
            if cur >= seg_end:
                break
        block = (ops, seg, version, pc, ops[-1][1])
        self._bcache[pc] = block
        return block

    def _exec_block(self, ops: list, limit: int) -> int:
        """Execute up to *limit* ops of one superblock; returns retired count.

        Mirrors :meth:`step` exactly on the fault path: pc restored to
        the faulting instruction, ``fault.pc`` filled, ``fault_hook``
        fired, and only retired ops counted toward instret/cycles.
        """
        if len(ops) > limit:
            ops = ops[:limit]
        executed = 0
        cycles = 0
        pc = self.pc
        try:
            for pc, nxt, instr, handler, cost, cost_taken in ops:
                self.pc = nxt
                if handler(self, instr):
                    cycles += cost_taken
                else:
                    cycles += cost
                executed += 1
                if self.pc != nxt:
                    break
        except SimFault as fault:
            self.pc = pc
            self._commit(executed, cycles, ops, count=True)
            if fault.pc is None:
                fault.pc = pc
            if self.fault_hook is not None:
                self.fault_hook(self, fault)
            raise
        except Exception:
            self.pc = pc
            self._commit(executed, cycles, ops, count=True)
            raise
        self._commit(executed, cycles, ops)
        return executed

    def _commit(self, executed: int, cycles: int, ops: list,
                count: bool = False) -> None:
        """Account a (possibly partial) superblock's retired ops.

        ``count=True`` (the fault paths) also settles the
        ``superblock_instret`` counter here, because :meth:`run` only
        sums the retired counts of blocks that return normally.
        """
        if not executed:
            return
        self.instret += executed
        self.cycles += cycles
        self.last_pc = ops[executed - 1][0]
        if count:
            self.counters["superblock_instret"] += executed

    # -- trace tier ----------------------------------------------------------

    def _record_trace(self, entry: int, budget: int) -> int:
        """Record a trace from hot *entry* by executing superblocks.

        The chain follows the branches actually taken right now: each
        block runs through :meth:`_exec_block` (so the recording pass is
        architecturally just normal execution — every op retires with
        the usual accounting), and the observed continuation pc becomes
        the guard value for the block's last op.  The chain closes when
        it returns to *entry* (a looping trace), revisits any interior
        block (an inner loop the trace must not unroll), or hits a size
        cap.  Recording aborts — leaving attempt accounting so the tier
        eventually gives up — when the chain faults, traps into a
        syscall, or runs out of instruction budget.

        Returns the number of instructions retired while recording.
        """
        attempts = self._trace_attempts
        attempts[entry] = attempts.get(entry, 0) + 1
        bcache = self._bcache
        flat: list = []
        ranges: list = []
        versions: list = []
        seen = {entry}
        total = 0
        loops = False
        pc = entry
        try:
            while (len(flat) < _MAX_TRACE_OPS
                   and len(ranges) < _MAX_TRACE_BLOCKS):
                block = bcache.get(pc)
                if block is None or block[1].version != block[2]:
                    try:
                        block = self._build_block(pc)
                    except SimFault as fault:
                        if fault.pc is None:
                            fault.pc = pc
                        if self.fault_hook is not None:
                            self.fault_hook(self, fault)
                        raise
                ops, seg, version, start, stop = block
                executed = self._exec_block(ops, budget - total)
                total += executed
                if executed < len(ops):
                    return total  # budget truncation: discard the recording
                next_pc = self.pc
                for opc, nxt, instr, handler, cost, cost_taken in ops[:-1]:
                    flat.append((opc, nxt, nxt, instr, handler,
                                 cost, cost_taken))
                opc, nxt, instr, handler, cost, cost_taken = ops[-1]
                flat.append((opc, nxt, next_pc, instr, handler,
                             cost, cost_taken))
                ranges.append([seg, version, start, stop])
                for v in versions:
                    if v[0] is seg:
                        break
                else:
                    versions.append([seg, version])
                if next_pc == entry:
                    loops = True
                    break
                if next_pc in seen:
                    break
                seen.add(next_pc)
                pc = next_pc
        except BaseException:
            # Counts of blocks that completed before the abort would be
            # lost (run() never sees our return value on a raise).
            if total:
                self.counters["superblock_instret"] += total
            raise
        if loops or len(ranges) >= 2:
            for seg, version, _s_, _e_ in ranges:
                if seg.version != version:
                    return total  # code changed mid-recording: discard
            trace = _Trace(entry, flat, ranges, versions, loops)
            if self.trace_compile:
                trace.fn, trace.cyc = _compile_trace(flat)
            self._tcache[entry] = trace
            attempts.pop(entry, None)
            self.counters["traces_compiled"] += 1
        return total

    def _exec_trace(self, trace: _Trace, limit: int) -> int:
        """Interpret up to *limit* ops of one trace; returns retired count.

        Each op sets ``pc`` to its fall-through before the handler runs
        (exactly like :meth:`_exec_block`), then checks the recorded
        continuation: a mismatch is a guard side exit — the op has
        retired and ``pc`` already points where execution really went,
        so the generic dispatcher just resumes there.  Looping traces
        replay without leaving this frame, revalidating segment versions
        at every loop edge so W|X stores keep bit-identical semantics
        with the block tier.
        """
        ops = trace.ops
        n = trace.n
        pcs = trace.pcs
        loops = trace.loops
        versions = trace.versions
        executed = 0
        cycles = 0
        side = 0
        pc = self.pc
        try:
            while True:
                ops_run = ops if n <= limit - executed else ops[:limit - executed]
                diverged = False
                for pc, nxt, expected, instr, handler, cost, cost_taken in ops_run:
                    self.pc = nxt
                    if handler(self, instr):
                        cycles += cost_taken
                    else:
                        cycles += cost
                    executed += 1
                    if self.pc != expected:
                        diverged = True
                        break
                if diverged:
                    side = 1
                    break
                if not loops or executed >= limit:
                    break
                stale = False
                for s, v in versions:
                    if s.version != v:
                        stale = True
                        break
                if stale:
                    break
        except SimFault as fault:
            self.pc = pc
            self._commit_trace(executed, cycles, pcs, side)
            if fault.pc is None:
                fault.pc = pc
            if self.fault_hook is not None:
                self.fault_hook(self, fault)
            raise
        except Exception:
            self.pc = pc
            self._commit_trace(executed, cycles, pcs, side)
            raise
        self._commit_trace(executed, cycles, pcs, side)
        return executed

    def _exec_trace_compiled(self, trace: _Trace, limit: int) -> int:
        """Run whole passes of a compiled trace; returns retired count.

        The caller guarantees ``limit >= trace.n`` so at least one full
        pass fits; partial passes (budget tail) go through the
        interpreted path instead.  On a fault the pass function left the
        faulting op index in ``_trace_ex``; the recorded prefix cycle
        sums reconstruct the exact partial accounting.
        """
        fn = trace.fn
        n = trace.n
        pcs = trace.pcs
        loops = trace.loops
        versions = trace.versions
        executed = 0
        cycles = 0
        side = 0
        try:
            while True:
                e, c, diverged = fn(self)
                executed += e
                cycles += c
                if diverged:
                    side = 1
                    break
                if not loops or limit - executed < n:
                    break
                stale = False
                for s, v in versions:
                    if s.version != v:
                        stale = True
                        break
                if stale:
                    break
        except SimFault as fault:
            ex = self._trace_ex
            executed += ex
            cycles += trace.cyc[ex]
            self.pc = pcs[ex]
            self._commit_trace(executed, cycles, pcs, side)
            if fault.pc is None:
                fault.pc = pcs[ex]
            if self.fault_hook is not None:
                self.fault_hook(self, fault)
            raise
        except BaseException:
            ex = self._trace_ex
            executed += ex
            cycles += trace.cyc[ex]
            self.pc = pcs[ex]
            self._commit_trace(executed, cycles, pcs, side)
            raise
        self._commit_trace(executed, cycles, pcs, side)
        return executed

    def _commit_trace(self, executed: int, cycles: int,
                      pcs: tuple, side_exits: int) -> None:
        """Account a trace dispatch's retired ops (possibly many passes)."""
        if executed:
            self.instret += executed
            self.cycles += cycles
            self.last_pc = pcs[(executed - 1) % len(pcs)]
            self.counters["trace_instret"] += executed
        if side_exits:
            self.counters["trace_side_exits"] += side_exits


def _trace_load_slow(cpu: Cpu, cell: list, addr: int, size: int) -> int:
    """Inline-cache miss path for a trace load: full permission-checked
    read (faults propagate with the step protocol), then prime the op's
    segment cell so subsequent passes hit the fast path."""
    space = cpu.space
    raw = space.read(addr, size)
    seg = space.segment_at(addr)
    if seg is not None:
        cell[0] = seg.base
        cell[1] = seg.data
    return int.from_bytes(raw, "little")


def _trace_store_slow(cpu: Cpu, cell: list, addr: int, data: bytes) -> None:
    """Inline-cache miss path for a trace store: full permission-checked
    write — including the W|X ``seg.version`` bump — then prime the cell
    only for plain data segments, so stores into executable memory never
    bypass the self-modifying-code invalidation protocol."""
    space = cpu.space
    space.write(addr, data)
    seg = space.segment_at(addr)
    if seg is not None and Perm.X not in seg.perm:
        cell[0] = seg.base
        cell[1] = seg.data


#: Sign bit for the xor trick: (a ^ SB) < (b ^ SB) unsigned ⇔ a <s b.
_SB = 0x8000_0000_0000_0000

#: Branch conditions over the register-file local ``r``, by mnemonic:
#: (condition source, negated condition source).
_BRANCH_SRC = {
    "beq": ("r[{a}] == r[{b}]", "r[{a}] != r[{b}]"),
    "bne": ("r[{a}] != r[{b}]", "r[{a}] == r[{b}]"),
    "bltu": ("r[{a}] < r[{b}]", "r[{a}] >= r[{b}]"),
    "bgeu": ("r[{a}] >= r[{b}]", "r[{a}] < r[{b}]"),
    "blt": (f"(r[{{a}}] ^ {_SB}) < (r[{{b}}] ^ {_SB})",
            f"(r[{{a}}] ^ {_SB}) >= (r[{{b}}] ^ {_SB})"),
    "bge": (f"(r[{{a}}] ^ {_SB}) >= (r[{{b}}] ^ {_SB})",
            f"(r[{{a}}] ^ {_SB}) < (r[{{b}}] ^ {_SB})"),
    "c.beqz": ("r[{a}] == 0", "r[{a}] != 0"),
    "c.bnez": ("r[{a}] != 0", "r[{a}] == 0"),
}

#: Register-register ALU expression bodies over operands {a}/{b}; the
#: result is masked like set_reg.  Covers the generic-handler and
#: compressed aliases that share field layout.
_RR_SRC = {
    "add": "(r[{a}] + r[{b}])",
    "sub": "(r[{a}] - r[{b}])",
    "c.sub": "(r[{a}] - r[{b}])",
    "and": "(r[{a}] & r[{b}])",
    "c.and": "(r[{a}] & r[{b}])",
    "or": "(r[{a}] | r[{b}])",
    "c.or": "(r[{a}] | r[{b}])",
    "xor": "(r[{a}] ^ r[{b}])",
    "c.xor": "(r[{a}] ^ r[{b}])",
    "mul": "(r[{a}] * r[{b}])",
    "sll": "(r[{a}] << (r[{b}] & 63))",
    "srl": "(r[{a}] >> (r[{b}] & 63))",
    "sra": f"((((r[{{a}}] ^ {_SB}) - {_SB}) >> (r[{{b}}] & 63)))",
    "sh1add": "((r[{a}] << 1) + r[{b}])",
    "sh2add": "((r[{a}] << 2) + r[{b}])",
    "sh3add": "((r[{a}] << 3) + r[{b}])",
}

#: Immediate-shift expression bodies over operand {a} / literal {sh}.
_SHIFT_SRC = {
    "slli": "(r[{a}] << {sh})",
    "c.slli": "(r[{a}] << {sh})",
    "srli": "(r[{a}] >> {sh})",
    "c.srli": "(r[{a}] >> {sh})",
    "srai": f"(((r[{{a}}] ^ {_SB}) - {_SB}) >> {{sh}})",
    "c.srai": f"(((r[{{a}}] ^ {_SB}) - {_SB}) >> {{sh}})",
}

#: Logic-immediate expression bodies ({imm} already masked to 64 bits).
_LOGIC_IMM_SRC = {
    "andi": "(r[{a}] & {imm})",
    "c.andi": "(r[{a}] & {imm})",
    "ori": "(r[{a}] | {imm})",
    "xori": "(r[{a}] ^ {imm})",
}

_ADDI_MNEMONICS = frozenset({"addi", "c.addi", "c.addi4spn"})
_ADDIW_MNEMONICS = frozenset({"addiw", "c.addiw"})

#: Loads: mnemonic -> (width bytes, signed).
_LOAD_SRC = {
    "lb": (1, True), "lh": (2, True), "lw": (4, True), "ld": (8, True),
    "lbu": (1, False), "lhu": (2, False), "lwu": (4, False),
    "c.lw": (4, True), "c.ld": (8, True),
    "c.lwsp": (4, True), "c.ldsp": (8, True),
}

#: Stores: mnemonic -> width bytes.
_STORE_SRC = {
    "sb": 1, "sh": 2, "sw": 4, "sd": 8,
    "c.sw": 4, "c.sd": 8, "c.swsp": 4, "c.sdsp": 8,
}

#: Ops with no architectural effect: compiled to nothing (cost folded).
_NOP_MNEMONICS = frozenset({"fence", "c.nop"})

#: Vector unit-stride memory ops: mnemonic -> element bits.
_VLOAD_SRC = {"vle32.v": 32, "vle64.v": 64}
_VSTORE_SRC = {"vse32.v": 32, "vse64.v": 64}

#: Elementwise vector-vector ALU ops inlined as bulk bytearray loops.
_VV_SRC = {
    "vadd.vv": "+", "vsub.vv": "-", "vmul.vv": "*",
    "vand.vv": "&", "vor.vv": "|", "vxor.vv": "^",
}

#: Elementwise vector-scalar ALU ops (operand ``x_`` from the x-file).
_VX_SRC = {"vadd.vx": "+", "vsub.vx": "-", "vmul.vx": "*"}


def _trace_vmem_prime(cpu: Cpu, cell: list, addr: int, write: bool) -> None:
    """Prime a vector memory op's segment cell after a slow-path access.

    Called after the generic handler completed (so permissions were
    already checked element by element); store cells only accept plain
    data segments so W|X version bumps never get bypassed."""
    seg = cpu.space.segment_at(addr)
    if seg is None:
        return
    if write and Perm.X in seg.perm:
        return
    cell[0] = seg.base
    cell[1] = seg.data


def _compile_trace(ops: list) -> tuple[Callable, tuple]:
    """Compile a trace's flat op list into one exec'd pass function.

    This is the trace tier's specialization level above ``_SPECIALIZERS``:
    instead of calling per-op closures, the hot RV64 subset is inlined
    as direct register-file expressions (``r[rd] = (r[rs1] + imm) & M``),
    loads/stores get a per-op segment inline cache (bounds-checked slice
    access against the resolved segment's backing bytearray, miss/fault
    through the full permission-checked path), conditional branches
    compile to native ``if`` guards on their recorded direction, and
    direct jumps vanish entirely — the pc is only materialized at trace
    exits.  Cycle costs fold into compile-time prefix sums, sound
    because a trace's branch directions are statically recorded.

    A pass returns ``(retired, cycles, diverged)``.  Guard side exits
    set ``cpu.pc`` to wherever execution really went before returning.
    Faults escape with the faulting op's index in ``cpu._trace_ex``; the
    caller combines it with the returned prefix-cycle table to settle
    partial state exactly.  Anything outside the inlined subset (vector,
    mulh/div families, W-ops) falls back to calling its superblock
    handler — same semantics, one call deeper.
    """
    from repro.isa.encoding import decode_vtype

    n = len(ops)
    M = _MASK64
    head = ["def _make(OPS, LD, ST, VM):"]
    body = ["    def _pass(cpu, length=len, FB=int.from_bytes):",
            "        r = cpu.regs",
            "        ex = 0",
            "        try:"]
    H = head.append
    A = body.append
    E = "            "
    cyc = 0
    prefix = []
    for k, (pc, nxt, expected, instr, handler, cost, cost_taken) in enumerate(ops):
        prefix.append(cyc)
        m = instr.mnemonic
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
        if m in _NOP_MNEMONICS:
            cyc += cost
            continue
        if m in _ADDI_MNEMONICS:
            if rd:
                if imm == 0:
                    A(f"{E}r[{rd}] = r[{rs1}]" if rs1 else f"{E}r[{rd}] = 0")
                elif rs1 == 0:
                    A(f"{E}r[{rd}] = {imm & M}")
                else:
                    A(f"{E}r[{rd}] = (r[{rs1}] + {imm}) & {M}")
            cyc += cost
            continue
        if m in _RR_SRC:
            if rd:
                expr = _RR_SRC[m].format(a=rs1, b=rs2)
                A(f"{E}r[{rd}] = {expr} & {M}")
            cyc += cost
            continue
        if m in _LOAD_SRC:
            width, signed = _LOAD_SRC[m]
            bits = width * 8
            addr_src = (f"(r[{rs1}] + {imm}) & {M}" if imm else f"r[{rs1}]")
            A(f"{E}a = {addr_src}")
            A(f"{E}o = a - C{k}[0]; d = C{k}[1]")
            A(f"{E}if d is not None and 0 <= o <= length(d) - {width}:")
            A(f"{E}    v = FB(d[o:o + {width}], 'little')")
            A(f"{E}else:")
            A(f"{E}    ex = {k}")
            A(f"{E}    v = LD(cpu, C{k}, a, {width})")
            if rd:
                if signed and bits < 64:
                    sign = 1 << (bits - 1)
                    ext = M ^ ((1 << bits) - 1)
                    A(f"{E}r[{rd}] = v | {ext} if v & {sign} else v")
                else:
                    A(f"{E}r[{rd}] = v")
            H(f"    C{k} = [0, None]")
            cyc += cost
            continue
        if m in _STORE_SRC:
            width = _STORE_SRC[m]
            val_src = (f"r[{rs2}]" if width == 8
                       else f"(r[{rs2}] & {(1 << (width * 8)) - 1})")
            addr_src = (f"(r[{rs1}] + {imm}) & {M}" if imm else f"r[{rs1}]")
            A(f"{E}a = {addr_src}")
            A(f"{E}o = a - C{k}[0]; d = C{k}[1]")
            A(f"{E}if d is not None and 0 <= o <= length(d) - {width}:")
            A(f"{E}    d[o:o + {width}] = {val_src}.to_bytes({width}, 'little')")
            A(f"{E}else:")
            A(f"{E}    ex = {k}")
            A(f"{E}    ST(cpu, C{k}, a, {val_src}.to_bytes({width}, 'little'))")
            H(f"    C{k} = [0, None]")
            cyc += cost
            continue
        if m in _SHIFT_SRC:
            if rd:
                expr = _SHIFT_SRC[m].format(a=rs1, sh=imm)
                A(f"{E}r[{rd}] = {expr} & {M}")
            cyc += cost
            continue
        if m in _LOGIC_IMM_SRC:
            if rd:
                expr = _LOGIC_IMM_SRC[m].format(a=rs1, imm=imm & M)
                A(f"{E}r[{rd}] = {expr}")
            cyc += cost
            continue
        if m in _BRANCH_SRC:
            cond, ncond = _BRANCH_SRC[m]
            target = (instr.addr + imm) & M
            if expected != nxt:  # recorded taken: not-taken side-exits
                A(f"{E}if {ncond.format(a=rs1, b=rs2)}:")
                A(f"{E}    cpu.pc = {nxt}")
                A(f"{E}    return ({k + 1}, {cyc + cost}, True)")
                cyc += cost_taken
            else:  # recorded not-taken: taken side-exits
                A(f"{E}if {cond.format(a=rs1, b=rs2)}:")
                A(f"{E}    cpu.pc = {target}")
                A(f"{E}    return ({k + 1}, {cyc + cost_taken}, True)")
                cyc += cost
            continue
        if m in ("jal", "c.j"):
            # Direct jump: statically followed; only the link survives.
            if m == "jal" and rd:
                A(f"{E}r[{rd}] = {instr.addr + 4}")
            cyc += cost
            continue
        if m in _INDIRECT_JUMPS:
            if m == "jalr":
                if imm:
                    A(f"{E}t = (r[{rs1}] + {imm}) & {M ^ 1}")
                else:
                    A(f"{E}t = r[{rs1}] & {M ^ 1}")
                if rd:
                    A(f"{E}r[{rd}] = {instr.addr + 4}")
            elif m == "c.jr":
                A(f"{E}t = r[{rs1}] & {M ^ 1}")
            else:  # c.jalr
                A(f"{E}t = r[{rs1}] & {M ^ 1}")
                A(f"{E}r[1] = {instr.addr + 2}")
            cyc += cost
            A(f"{E}if t != {expected}:")
            A(f"{E}    cpu.pc = t")
            A(f"{E}    return ({k + 1}, {cyc}, True)")
            continue
        if m in _ADDIW_MNEMONICS:
            if rd:
                A(f"{E}v = (r[{rs1}] + {imm}) & {_MASK32}")
                A(f"{E}r[{rd}] = v | {M ^ _MASK32} if v & {1 << 31} else v")
            cyc += cost
            continue
        if m == "c.addi16sp":
            A(f"{E}r[2] = (r[2] + {imm}) & {M}")
            cyc += cost
            continue
        if m in ("lui", "c.lui", "c.li", "auipc"):
            if rd:
                if m == "lui":
                    value = sign_extend(imm << 12, 32) & M
                elif m == "c.lui":
                    value = sign_extend((imm & 0x3F) << 12, 18) & M
                elif m == "c.li":
                    value = imm & M
                else:
                    value = (instr.addr + sign_extend(imm << 12, 32)) & M
                A(f"{E}r[{rd}] = {value}")
            cyc += cost
            continue
        if m == "c.mv":
            if rd:
                A(f"{E}r[{rd}] = r[{rs2}]")
            cyc += cost
            continue
        if m == "c.add":
            if rd:
                A(f"{E}r[{rd}] = (r[{rd}] + r[{rs2}]) & {M}")
            cyc += cost
            continue
        if m == "slti":
            if rd:
                A(f"{E}r[{rd}] = 1 if (r[{rs1}] ^ {_SB}) < {(imm & M) ^ _SB} else 0")
            cyc += cost
            continue
        if m == "sltiu":
            if rd:
                A(f"{E}r[{rd}] = 1 if r[{rs1}] < {imm & M} else 0")
            cyc += cost
            continue
        if m == "slt":
            if rd:
                A(f"{E}r[{rd}] = 1 if (r[{rs1}] ^ {_SB}) < (r[{rs2}] ^ {_SB}) else 0")
            cyc += cost
            continue
        if m == "sltu":
            if rd:
                A(f"{E}r[{rd}] = 1 if r[{rs1}] < r[{rs2}] else 0")
            cyc += cost
            continue
        if m == "divu":
            if rd:
                A(f"{E}b = r[{rs2}]")
                A(f"{E}r[{rd}] = {M} if b == 0 else r[{rs1}] // b")
            cyc += cost
            continue
        if m == "remu":
            if rd:
                A(f"{E}b = r[{rs2}]")
                A(f"{E}r[{rd}] = r[{rs1}] if b == 0 else r[{rs1}] % b")
            cyc += cost
            continue
        if m == "vsetvli":
            try:
                sew = decode_vtype(imm)
            except Exception:
                sew = None
            if sew in (32, 64):
                A(f"{E}vu = cpu.vector")
                A(f"{E}vu.sew = {sew}")
                A(f"{E}vl_ = vu.vlen // {sew}")
                if rs1:
                    A(f"{E}a = r[{rs1}]")
                    A(f"{E}vl_ = a if a < vl_ else vl_")
                A(f"{E}vu.vl = vl_")
                if rd:
                    A(f"{E}r[{rd}] = vl_")
                cyc += cost
                continue
        if m in _VLOAD_SRC:
            bits = _VLOAD_SRC[m]
            step = bits // 8
            A(f"{E}vu = cpu.vector")
            A(f"{E}a = r[{rs1}]")
            A(f"{E}nb = vu.vl * {step}")
            A(f"{E}o = a - C{k}[0]; d = C{k}[1]")
            A(f"{E}if vu.sew == {bits} and d is not None "
              f"and 0 <= o <= length(d) - nb:")
            A(f"{E}    vu.regs[{instr.vd}][0:nb] = d[o:o + nb]")
            A(f"{E}else:")
            A(f"{E}    ex = {k}")
            A(f"{E}    H{k}(cpu, I{k})")
            A(f"{E}    VM(cpu, C{k}, a, False)")
            H(f"    C{k} = [0, None]")
            H(f"    H{k} = OPS[{k}][4]; I{k} = OPS[{k}][3]")
            cyc += cost
            continue
        if m in _VSTORE_SRC:
            bits = _VSTORE_SRC[m]
            step = bits // 8
            A(f"{E}vu = cpu.vector")
            A(f"{E}a = r[{rs1}]")
            A(f"{E}nb = vu.vl * {step}")
            A(f"{E}o = a - C{k}[0]; d = C{k}[1]")
            A(f"{E}if vu.sew == {bits} and d is not None "
              f"and 0 <= o <= length(d) - nb:")
            A(f"{E}    d[o:o + nb] = vu.regs[{instr.vd}][0:nb]")
            A(f"{E}else:")
            A(f"{E}    ex = {k}")
            A(f"{E}    H{k}(cpu, I{k})")
            A(f"{E}    VM(cpu, C{k}, a, True)")
            H(f"    C{k} = [0, None]")
            H(f"    H{k} = OPS[{k}][4]; I{k} = OPS[{k}][3]")
            cyc += cost
            continue
        if m in _VV_SRC:
            op = _VV_SRC[m]
            A(f"{E}vu = cpu.vector")
            A(f"{E}w = vu.sew >> 3; mk = (1 << vu.sew) - 1")
            A(f"{E}s2 = vu.regs[{instr.vs2}]; s1 = vu.regs[{instr.vs1}]; "
              f"dd = vu.regs[{instr.vd}]")
            A(f"{E}for i_ in range(0, vu.vl * w, w):")
            A(f"{E}    j_ = i_ + w")
            A(f"{E}    dd[i_:j_] = ((FB(s2[i_:j_], 'little') {op} "
              f"FB(s1[i_:j_], 'little')) & mk).to_bytes(w, 'little')")
            cyc += cost
            continue
        if m in _VX_SRC:
            op = _VX_SRC[m]
            A(f"{E}vu = cpu.vector")
            A(f"{E}w = vu.sew >> 3; mk = (1 << vu.sew) - 1")
            A(f"{E}x_ = r[{rs1}]")
            A(f"{E}s2 = vu.regs[{instr.vs2}]; dd = vu.regs[{instr.vd}]")
            A(f"{E}for i_ in range(0, vu.vl * w, w):")
            A(f"{E}    j_ = i_ + w")
            A(f"{E}    dd[i_:j_] = ((FB(s2[i_:j_], 'little') {op} x_) "
              f"& mk).to_bytes(w, 'little')")
            cyc += cost
            continue
        if m == "vmacc.vv":
            A(f"{E}vu = cpu.vector")
            A(f"{E}w = vu.sew >> 3; mk = (1 << vu.sew) - 1")
            A(f"{E}s2 = vu.regs[{instr.vs2}]; s1 = vu.regs[{instr.vs1}]; "
              f"dd = vu.regs[{instr.vd}]")
            A(f"{E}for i_ in range(0, vu.vl * w, w):")
            A(f"{E}    j_ = i_ + w")
            A(f"{E}    dd[i_:j_] = ((FB(dd[i_:j_], 'little') + "
              f"FB(s1[i_:j_], 'little') * FB(s2[i_:j_], 'little')) "
              f"& mk).to_bytes(w, 'little')")
            cyc += cost
            continue
        if m in ("vmv.v.x", "vmv.v.i"):
            A(f"{E}vu = cpu.vector")
            A(f"{E}w = vu.sew >> 3; mk = (1 << vu.sew) - 1")
            src = f"r[{rs1}]" if m == "vmv.v.x" else f"{imm}"
            A(f"{E}bs = (({src}) & mk).to_bytes(w, 'little')")
            A(f"{E}vu.regs[{instr.vd}][0:vu.vl * w] = bs * vu.vl")
            cyc += cost
            continue
        if m == "vredsum.vs":
            A(f"{E}vu = cpu.vector")
            A(f"{E}w = vu.sew >> 3; mk = (1 << vu.sew) - 1")
            A(f"{E}s2 = vu.regs[{instr.vs2}]")
            A(f"{E}t = FB(vu.regs[{instr.vs1}][0:w], 'little')")
            A(f"{E}for i_ in range(0, vu.vl * w, w):")
            A(f"{E}    t += FB(s2[i_:i_ + w], 'little')")
            A(f"{E}vu.regs[{instr.vd}][0:w] = (t & mk).to_bytes(w, 'little')")
            cyc += cost
            continue
        # Fallback: anything exotic calls its superblock handler (which
        # never touches pc for non-control ops, so the lazy-pc scheme
        # holds).  Control mnemonics are all inlined above; ecall/ebreak
        # abort recording and never reach here.
        H(f"    H{k} = OPS[{k}][4]; I{k} = OPS[{k}][3]")
        A(f"{E}ex = {k}")
        A(f"{E}H{k}(cpu, I{k})")
        cyc += cost
    if body[-1] == "        try:":
        # Every op was a pure-cost no-op (e.g. an all-nop trace): the
        # try block still needs a statement to be valid Python.
        A(f"{E}pass")
    A("        except BaseException:")
    A("            cpu._trace_ex = ex")
    A("            raise")
    A(f"        cpu.pc = {ops[-1][2]}")
    A(f"        return ({n}, {cyc}, False)")
    A("    return _pass")
    src = "\n".join(head + body)
    code = _TRACE_CODE_MEMO.get(src)
    if code is None:
        if len(_TRACE_CODE_MEMO) >= 512:
            _TRACE_CODE_MEMO.clear()
        code = compile(src, "<trace>", "exec")
        _TRACE_CODE_MEMO[src] = code
    ns: dict = {}
    exec(code, ns)  # noqa: S102 - trusted, self-generated
    return (ns["_make"](ops, _trace_load_slow, _trace_store_slow,
                        _trace_vmem_prime),
            tuple(prefix))


#: Source → code-object memo for :func:`_compile_trace`.  Identical
#: guest code recorded in different kernels (benchmark rounds, pooled
#: workers, service re-runs) produces byte-identical generated source;
#: memoizing the *compile* step means each unique trace shape pays the
#: parse cost once per process.  Cell/handler state is still built fresh
#: per trace by calling ``_make``, so nothing architectural is shared.
_TRACE_CODE_MEMO: dict[str, object] = {}


# ---------------------------------------------------------------------------
# Instruction semantics.  Handlers take (cpu, instr), return truthy when a
# conditional branch is taken (for the cost model).
# ---------------------------------------------------------------------------

def _unsupported(cpu: Cpu, i: Instruction):
    raise IllegalInstructionFault(
        i.addr if i.addr is not None else cpu.pc,
        "unsupported-extension",
        f"{i.mnemonic} needs {i.extension.value}",
    )


def _exec_lui(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend(i.imm << 12, 32))


def _exec_auipc(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, (i.addr + sign_extend(i.imm << 12, 32)) & _MASK64)


def _exec_jal(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, i.addr + 4)
    cpu.pc = (i.addr + i.imm) & _MASK64


def _exec_jalr(cpu: Cpu, i: Instruction):
    target = (cpu.get_reg(i.rs1) + i.imm) & _MASK64 & ~1
    cpu.set_reg(i.rd, i.addr + 4)
    cpu.pc = target


def _branch(op):
    def handler(cpu: Cpu, i: Instruction):
        if op(cpu.get_reg(i.rs1), cpu.get_reg(i.rs2)):
            cpu.pc = (i.addr + i.imm) & _MASK64
            return True
        return False
    return handler


def _exec_load(width: int, signed: bool):
    def handler(cpu: Cpu, i: Instruction):
        addr = (cpu.get_reg(i.rs1) + i.imm) & _MASK64
        raw = cpu.space.read(addr, width)
        value = int.from_bytes(raw, "little")
        if signed:
            value = sign_extend(value, width * 8) & _MASK64
        cpu.set_reg(i.rd, value)
    return handler


def _exec_store(width: int):
    def handler(cpu: Cpu, i: Instruction):
        addr = (cpu.get_reg(i.rs1) + i.imm) & _MASK64
        cpu.space.write(addr, (cpu.get_reg(i.rs2) & ((1 << (width * 8)) - 1)).to_bytes(width, "little"))
    return handler


def _exec_addi(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) + i.imm)


def _exec_addiw(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend((cpu.get_reg(i.rs1) + i.imm) & _MASK32, 32))


def _exec_slti(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, 1 if _s(cpu.get_reg(i.rs1)) < i.imm else 0)


def _exec_sltiu(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, 1 if cpu.get_reg(i.rs1) < (i.imm & _MASK64) else 0)


def _exec_xori(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) ^ (i.imm & _MASK64))


def _exec_ori(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) | (i.imm & _MASK64))


def _exec_andi(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) & (i.imm & _MASK64))


def _exec_slli(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) << i.imm)


def _exec_srli(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) >> i.imm)


def _exec_srai(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, _s(cpu.get_reg(i.rs1)) >> i.imm)


def _exec_slliw(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend((cpu.get_reg(i.rs1) << i.imm) & _MASK32, 32))


def _exec_srliw(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend((cpu.get_reg(i.rs1) & _MASK32) >> i.imm, 32))


def _exec_sraiw(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend(cpu.get_reg(i.rs1) & _MASK32, 32) >> i.imm)


def _rr(op):
    def handler(cpu: Cpu, i: Instruction):
        cpu.set_reg(i.rd, op(cpu.get_reg(i.rs1), cpu.get_reg(i.rs2)))
    return handler


def _rrw(op):
    def handler(cpu: Cpu, i: Instruction):
        cpu.set_reg(i.rd, sign_extend(op(cpu.get_reg(i.rs1), cpu.get_reg(i.rs2)) & _MASK32, 32))
    return handler


def _div(a: int, b: int) -> int:
    if b == 0:
        return _MASK64
    sa, sb = _s(a), _s(b)
    if sa == -(1 << 63) and sb == -1:
        return a
    q = abs(sa) // abs(sb)
    return to_unsigned64(-q if (sa < 0) != (sb < 0) else q)


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a
    sa, sb = _s(a), _s(b)
    if sa == -(1 << 63) and sb == -1:
        return 0
    r = abs(sa) % abs(sb)
    return to_unsigned64(-r if sa < 0 else r)


def _divw(a: int, b: int) -> int:
    aw, bw = sign_extend(a & _MASK32, 32), sign_extend(b & _MASK32, 32)
    if bw == 0:
        return _MASK32
    if aw == -(1 << 31) and bw == -1:
        return a & _MASK32
    q = abs(aw) // abs(bw)
    return (-q if (aw < 0) != (bw < 0) else q) & _MASK32


def _remw(a: int, b: int) -> int:
    aw, bw = sign_extend(a & _MASK32, 32), sign_extend(b & _MASK32, 32)
    if bw == 0:
        return a & _MASK32
    if aw == -(1 << 31) and bw == -1:
        return 0
    r = abs(aw) % abs(bw)
    return (-r if aw < 0 else r) & _MASK32


def _exec_ecall(cpu: Cpu, i: Instruction):
    raise EcallTrap(i.addr)


def _exec_ebreak(cpu: Cpu, i: Instruction):
    raise BreakpointTrap(i.addr, compressed=i.length == 2)


def _exec_fence(cpu: Cpu, i: Instruction):
    return None


# -- compressed --------------------------------------------------------------

def _exec_c_nop(cpu: Cpu, i: Instruction):
    return None


def _exec_c_j(cpu: Cpu, i: Instruction):
    cpu.pc = (i.addr + i.imm) & _MASK64


def _exec_c_jr(cpu: Cpu, i: Instruction):
    cpu.pc = cpu.get_reg(i.rs1) & ~1


def _exec_c_jalr(cpu: Cpu, i: Instruction):
    target = cpu.get_reg(i.rs1) & ~1
    cpu.set_reg(1, i.addr + 2)
    cpu.pc = target


def _exec_c_beqz(cpu: Cpu, i: Instruction):
    if cpu.get_reg(i.rs1) == 0:
        cpu.pc = (i.addr + i.imm) & _MASK64
        return True
    return False


def _exec_c_bnez(cpu: Cpu, i: Instruction):
    if cpu.get_reg(i.rs1) != 0:
        cpu.pc = (i.addr + i.imm) & _MASK64
        return True
    return False


def _exec_c_li(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, i.imm)


def _exec_c_lui(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend((i.imm & 0x3F) << 12, 18))


def _exec_c_mv(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs2))


def _exec_c_add(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rd) + cpu.get_reg(i.rs2))


def _exec_c_addi16sp(cpu: Cpu, i: Instruction):
    cpu.set_reg(2, cpu.get_reg(2) + i.imm)


# -- vector -------------------------------------------------------------------

def _exec_vsetvli(cpu: Cpu, i: Instruction):
    from repro.isa.encoding import decode_vtype

    sew = decode_vtype(i.imm)
    if i.rs1 == 0:
        # rs1=x0: AVL = ~0 (vl = VLMAX) per the RVV spec.
        avl = cpu.vector.vlen // sew
    else:
        avl = cpu.get_reg(i.rs1)
    vl = cpu.vector.set_vl(avl, sew)
    cpu.set_reg(i.rd, vl)


def _exec_vload(width: int):
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        base = cpu.get_reg(i.rs1)
        step = width // 8
        for idx in range(vu.vl):
            value = int.from_bytes(cpu.space.read(base + idx * step, step), "little")
            vu.write_elem(i.vd, idx, value)
    return handler


def _exec_vstore(width: int):
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        base = cpu.get_reg(i.rs1)
        step = width // 8
        for idx in range(vu.vl):
            cpu.space.write(base + idx * step, (vu.read_elem(i.vd, idx) & ((1 << width) - 1)).to_bytes(step, "little"))
    return handler


def _vv(op):
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        for idx in range(vu.vl):
            vu.write_elem(i.vd, idx, op(vu.read_elem(i.vs2, idx), vu.read_elem(i.vs1, idx)))
    return handler


def _vx(op):
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        x = cpu.get_reg(i.rs1)
        for idx in range(vu.vl):
            vu.write_elem(i.vd, idx, op(vu.read_elem(i.vs2, idx), x))
    return handler


def _vv_sew(op):
    """Elementwise op that needs the SEW (shifts, signed compares)."""
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        sew = vu.sew
        for idx in range(vu.vl):
            vu.write_elem(i.vd, idx, op(vu.read_elem(i.vs2, idx), vu.read_elem(i.vs1, idx), sew))
    return handler


def _vx_sew(op):
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        sew = vu.sew
        x = cpu.get_reg(i.rs1)
        for idx in range(vu.vl):
            vu.write_elem(i.vd, idx, op(vu.read_elem(i.vs2, idx), x, sew))
    return handler


def _smin(a: int, b: int, sew: int) -> int:
    sa, sb = sign_extend(a, sew), sign_extend(b, sew)
    return a if sa <= sb else b


def _smax(a: int, b: int, sew: int) -> int:
    sa, sb = sign_extend(a, sew), sign_extend(b, sew)
    return a if sa >= sb else b


def _vsra(a: int, b: int, sew: int) -> int:
    return sign_extend(a, sew) >> (b & (sew - 1))


def _exec_vmv_x_s(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    cpu.set_reg(i.rd, sign_extend(vu.read_elem(i.vs2, 0), vu.sew) & _MASK64)


_exec_vadd_vx = _vx(lambda a, x: a + x)


def _exec_vadd_vi(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    for idx in range(vu.vl):
        vu.write_elem(i.vd, idx, vu.read_elem(i.vs2, idx) + i.imm)


def _exec_vmacc(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    for idx in range(vu.vl):
        vu.write_elem(
            i.vd, idx,
            vu.read_elem(i.vd, idx) + vu.read_elem(i.vs1, idx) * vu.read_elem(i.vs2, idx),
        )


def _exec_vmv_v_x(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    x = cpu.get_reg(i.rs1)
    for idx in range(vu.vl):
        vu.write_elem(i.vd, idx, x)


def _exec_vmv_v_i(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    for idx in range(vu.vl):
        vu.write_elem(i.vd, idx, i.imm)


def _exec_vredsum(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    total = vu.read_elem(i.vs1, 0)
    for idx in range(vu.vl):
        total += vu.read_elem(i.vs2, idx)
    vu.write_elem(i.vd, 0, total)


_HANDLERS: dict[str, Callable] = {
    "lui": _exec_lui,
    "auipc": _exec_auipc,
    "jal": _exec_jal,
    "jalr": _exec_jalr,
    "beq": _branch(lambda a, b: a == b),
    "bne": _branch(lambda a, b: a != b),
    "blt": _branch(lambda a, b: _s(a) < _s(b)),
    "bge": _branch(lambda a, b: _s(a) >= _s(b)),
    "bltu": _branch(lambda a, b: a < b),
    "bgeu": _branch(lambda a, b: a >= b),
    "lb": _exec_load(1, True),
    "lh": _exec_load(2, True),
    "lw": _exec_load(4, True),
    "ld": _exec_load(8, True),
    "lbu": _exec_load(1, False),
    "lhu": _exec_load(2, False),
    "lwu": _exec_load(4, False),
    "sb": _exec_store(1),
    "sh": _exec_store(2),
    "sw": _exec_store(4),
    "sd": _exec_store(8),
    "addi": _exec_addi,
    "addiw": _exec_addiw,
    "slti": _exec_slti,
    "sltiu": _exec_sltiu,
    "xori": _exec_xori,
    "ori": _exec_ori,
    "andi": _exec_andi,
    "slli": _exec_slli,
    "srli": _exec_srli,
    "srai": _exec_srai,
    "slliw": _exec_slliw,
    "srliw": _exec_srliw,
    "sraiw": _exec_sraiw,
    "add": _rr(lambda a, b: a + b),
    "sub": _rr(lambda a, b: a - b),
    "sll": _rr(lambda a, b: a << (b & 63)),
    "slt": _rr(lambda a, b: 1 if _s(a) < _s(b) else 0),
    "sltu": _rr(lambda a, b: 1 if a < b else 0),
    "xor": _rr(lambda a, b: a ^ b),
    "srl": _rr(lambda a, b: a >> (b & 63)),
    "sra": _rr(lambda a, b: _s(a) >> (b & 63)),
    "or": _rr(lambda a, b: a | b),
    "and": _rr(lambda a, b: a & b),
    "addw": _rrw(lambda a, b: a + b),
    "subw": _rrw(lambda a, b: a - b),
    "sllw": _rrw(lambda a, b: a << (b & 31)),
    "srlw": _rrw(lambda a, b: (a & _MASK32) >> (b & 31)),
    "sraw": _rrw(lambda a, b: sign_extend(a & _MASK32, 32) >> (b & 31)),
    "mul": _rr(lambda a, b: a * b),
    "mulh": _rr(lambda a, b: (_s(a) * _s(b)) >> 64),
    "mulhsu": _rr(lambda a, b: (_s(a) * b) >> 64),
    "mulhu": _rr(lambda a, b: (a * b) >> 64),
    "div": _rr(_div),
    "divu": _rr(lambda a, b: _MASK64 if b == 0 else a // b),
    "rem": _rr(_rem),
    "remu": _rr(lambda a, b: a if b == 0 else a % b),
    "mulw": _rrw(lambda a, b: a * b),
    "divw": _rrw(_divw),
    "divuw": _rrw(lambda a, b: _MASK32 if (b & _MASK32) == 0 else (a & _MASK32) // (b & _MASK32)),
    "remw": _rrw(_remw),
    "remuw": _rrw(lambda a, b: (a & _MASK32) if (b & _MASK32) == 0 else (a & _MASK32) % (b & _MASK32)),
    "sh1add": _rr(lambda a, b: (a << 1) + b),
    "sh2add": _rr(lambda a, b: (a << 2) + b),
    "sh3add": _rr(lambda a, b: (a << 3) + b),
    "ecall": _exec_ecall,
    "ebreak": _exec_ebreak,
    "fence": _exec_fence,
    # compressed
    "c.nop": _exec_c_nop,
    "c.addi": _exec_addi,
    "c.addiw": _exec_addiw,
    "c.li": _exec_c_li,
    "c.lui": _exec_c_lui,
    "c.addi16sp": _exec_c_addi16sp,
    "c.addi4spn": _exec_addi,
    "c.slli": _exec_slli,
    "c.srli": _exec_srli,
    "c.srai": _exec_srai,
    "c.andi": _exec_andi,
    "c.sub": _rr(lambda a, b: a - b),
    "c.xor": _rr(lambda a, b: a ^ b),
    "c.or": _rr(lambda a, b: a | b),
    "c.and": _rr(lambda a, b: a & b),
    "c.subw": _rrw(lambda a, b: a - b),
    "c.addw": _rrw(lambda a, b: a + b),
    "c.j": _exec_c_j,
    "c.jr": _exec_c_jr,
    "c.jalr": _exec_c_jalr,
    "c.beqz": _exec_c_beqz,
    "c.bnez": _exec_c_bnez,
    "c.mv": _exec_c_mv,
    "c.add": _exec_c_add,
    "c.lw": _exec_load(4, True),
    "c.ld": _exec_load(8, True),
    "c.lwsp": _exec_load(4, True),
    "c.ldsp": _exec_load(8, True),
    "c.sw": _exec_store(4),
    "c.sd": _exec_store(8),
    "c.swsp": _exec_store(4),
    "c.sdsp": _exec_store(8),
    "c.ebreak": _exec_ebreak,
    # vector
    "vsetvli": _exec_vsetvli,
    "vle32.v": _exec_vload(32),
    "vle64.v": _exec_vload(64),
    "vse32.v": _exec_vstore(32),
    "vse64.v": _exec_vstore(64),
    "vadd.vv": _vv(lambda a, b: a + b),
    "vsub.vv": _vv(lambda a, b: a - b),
    "vmul.vv": _vv(lambda a, b: a * b),
    "vand.vv": _vv(lambda a, b: a & b),
    "vor.vv": _vv(lambda a, b: a | b),
    "vxor.vv": _vv(lambda a, b: a ^ b),
    "vadd.vx": _exec_vadd_vx,
    "vadd.vi": _exec_vadd_vi,
    "vsub.vx": _vx(lambda a, x: a - x),
    "vmul.vx": _vx(lambda a, x: a * x),
    "vmin.vv": _vv_sew(_smin),
    "vmax.vv": _vv_sew(_smax),
    "vminu.vv": _vv(lambda a, b: min(a, b)),
    "vmaxu.vv": _vv(lambda a, b: max(a, b)),
    "vsll.vv": _vv_sew(lambda a, b, sew: a << (b & (sew - 1))),
    "vsll.vx": _vx_sew(lambda a, x, sew: a << (x & (sew - 1))),
    "vsrl.vv": _vv_sew(lambda a, b, sew: a >> (b & (sew - 1))),
    "vsrl.vx": _vx_sew(lambda a, x, sew: a >> (x & (sew - 1))),
    "vsra.vv": _vv_sew(_vsra),
    "vsra.vx": _vx_sew(_vsra),
    "vmacc.vv": _exec_vmacc,
    "vmv.v.x": _exec_vmv_v_x,
    "vmv.v.i": _exec_vmv_v_i,
    "vmv.x.s": _exec_vmv_x_s,
    "vredsum.vs": _exec_vredsum,
}


# ---------------------------------------------------------------------------
# Superblock operand specialization.  At block-build time the decoded
# operands are baked into small closures that index the register file
# directly — the same architectural semantics as the generic handlers
# (x0 stays zero because nothing ever writes regs[0] and writes to it
# are compiled out; results are masked exactly as set_reg would), minus
# the per-step attribute and method dispatch.  A specializer may return
# None to decline an encoding, falling back to the generic handler.
# ---------------------------------------------------------------------------

def _spec_nop(cpu, _i):
    return None


def _spec_const(i, value):
    rd = i.rd
    if rd == 0:
        return _spec_nop
    value &= _MASK64

    def fn(cpu, _i, rd=rd, value=value):
        cpu.regs[rd] = value
    return fn


def _spec_lui(i):
    return _spec_const(i, sign_extend(i.imm << 12, 32))


def _spec_c_lui(i):
    return _spec_const(i, sign_extend((i.imm & 0x3F) << 12, 18))


def _spec_c_li(i):
    return _spec_const(i, i.imm)


def _spec_auipc(i):
    return _spec_const(i, i.addr + sign_extend(i.imm << 12, 32))


def _spec_addi(i):
    rd, rs1, imm = i.rd, i.rs1, i.imm
    if rd == 0:
        return _spec_nop

    def fn(cpu, _i, rd=rd, rs1=rs1, imm=imm):
        regs = cpu.regs
        regs[rd] = (regs[rs1] + imm) & _MASK64
    return fn


def _spec_addiw(i):
    rd, rs1, imm = i.rd, i.rs1, i.imm
    if rd == 0:
        return _spec_nop

    def fn(cpu, _i, rd=rd, rs1=rs1, imm=imm):
        regs = cpu.regs
        v = (regs[rs1] + imm) & _MASK32
        regs[rd] = (v - 0x1_0000_0000 if v & 0x8000_0000 else v) & _MASK64
    return fn


def _spec_c_addi16sp(i):
    imm = i.imm

    def fn(cpu, _i, imm=imm):
        regs = cpu.regs
        regs[2] = (regs[2] + imm) & _MASK64
    return fn


def _spec_logic_imm(op):
    def make(i):
        rd, rs1 = i.rd, i.rs1
        if rd == 0:
            return _spec_nop
        imm = i.imm & _MASK64

        def fn(cpu, _i, rd=rd, rs1=rs1, imm=imm, op=op):
            regs = cpu.regs
            regs[rd] = op(regs[rs1], imm)
        return fn
    return make


def _spec_shift_imm(op):
    """Immediate shifts: result masked, shamt literal."""
    def make(i):
        rd, rs1, sh = i.rd, i.rs1, i.imm
        if rd == 0:
            return _spec_nop

        def fn(cpu, _i, rd=rd, rs1=rs1, sh=sh, op=op):
            regs = cpu.regs
            regs[rd] = op(regs[rs1], sh) & _MASK64
        return fn
    return make


def _spec_rr(op):
    """Register-register ALU: result masked like set_reg."""
    def make(i):
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2
        if rd == 0:
            return _spec_nop

        def fn(cpu, _i, rd=rd, rs1=rs1, rs2=rs2, op=op):
            regs = cpu.regs
            regs[rd] = op(regs[rs1], regs[rs2]) & _MASK64
        return fn
    return make


def _spec_c_mv(i):
    rd, rs2 = i.rd, i.rs2
    if rd == 0:
        return _spec_nop

    def fn(cpu, _i, rd=rd, rs2=rs2):
        regs = cpu.regs
        regs[rd] = regs[rs2]
    return fn


def _spec_c_add(i):
    rd, rs2 = i.rd, i.rs2
    if rd == 0:
        return _spec_nop

    def fn(cpu, _i, rd=rd, rs2=rs2):
        regs = cpu.regs
        regs[rd] = (regs[rd] + regs[rs2]) & _MASK64
    return fn


def _spec_load(width, signed):
    bits = width * 8

    def make(i):
        rd, rs1, imm = i.rd, i.rs1, i.imm

        def fn(cpu, _i, rd=rd, rs1=rs1, imm=imm, width=width,
               bits=bits, signed=signed):
            regs = cpu.regs
            addr = (regs[rs1] + imm) & _MASK64
            value = int.from_bytes(cpu.space.read(addr, width), "little")
            if signed and value >> (bits - 1):
                value = (value - (1 << bits)) & _MASK64
            if rd:
                regs[rd] = value
        return fn
    return make


def _spec_store(width):
    mask = (1 << (width * 8)) - 1

    def make(i):
        rs1, rs2, imm = i.rs1, i.rs2, i.imm

        def fn(cpu, _i, rs1=rs1, rs2=rs2, imm=imm, width=width, mask=mask):
            regs = cpu.regs
            cpu.space.write((regs[rs1] + imm) & _MASK64,
                            (regs[rs2] & mask).to_bytes(width, "little"))
        return fn
    return make


def _spec_branch(op):
    def make(i):
        rs1, rs2 = i.rs1, i.rs2
        target = (i.addr + i.imm) & _MASK64

        def fn(cpu, _i, rs1=rs1, rs2=rs2, target=target, op=op):
            regs = cpu.regs
            if op(regs[rs1], regs[rs2]):
                cpu.pc = target
                return True
            return False
        return fn
    return make


def _spec_c_branch(zero_taken):
    def make(i):
        rs1 = i.rs1
        target = (i.addr + i.imm) & _MASK64

        def fn(cpu, _i, rs1=rs1, target=target, zero_taken=zero_taken):
            if (cpu.regs[rs1] == 0) is zero_taken:
                cpu.pc = target
                return True
            return False
        return fn
    return make


def _spec_jal(i):
    rd, link = i.rd, i.addr + 4
    target = (i.addr + i.imm) & _MASK64

    def fn(cpu, _i, rd=rd, link=link, target=target):
        if rd:
            cpu.regs[rd] = link
        cpu.pc = target
    return fn


def _spec_c_j(i):
    target = (i.addr + i.imm) & _MASK64

    def fn(cpu, _i, target=target):
        cpu.pc = target
    return fn


def _spec_jalr(i):
    rd, rs1, imm, link = i.rd, i.rs1, i.imm, i.addr + 4

    def fn(cpu, _i, rd=rd, rs1=rs1, imm=imm, link=link):
        target = (cpu.regs[rs1] + imm) & _MASK64 & ~1
        if rd:
            cpu.regs[rd] = link
        cpu.pc = target
    return fn


_SPECIALIZERS: dict[str, Callable[[Instruction], Optional[Callable]]] = {
    "lui": _spec_lui,
    "auipc": _spec_auipc,
    "c.lui": _spec_c_lui,
    "c.li": _spec_c_li,
    "addi": _spec_addi,
    "c.addi": _spec_addi,
    "c.addi4spn": _spec_addi,
    "addiw": _spec_addiw,
    "c.addiw": _spec_addiw,
    "c.addi16sp": _spec_c_addi16sp,
    "andi": _spec_logic_imm(lambda a, b: a & b),
    "c.andi": _spec_logic_imm(lambda a, b: a & b),
    "ori": _spec_logic_imm(lambda a, b: a | b),
    "xori": _spec_logic_imm(lambda a, b: a ^ b),
    "slli": _spec_shift_imm(lambda a, sh: a << sh),
    "c.slli": _spec_shift_imm(lambda a, sh: a << sh),
    "srli": _spec_shift_imm(lambda a, sh: a >> sh),
    "c.srli": _spec_shift_imm(lambda a, sh: a >> sh),
    "srai": _spec_shift_imm(lambda a, sh: _s(a) >> sh),
    "c.srai": _spec_shift_imm(lambda a, sh: _s(a) >> sh),
    "add": _spec_rr(lambda a, b: a + b),
    "sub": _spec_rr(lambda a, b: a - b),
    "c.sub": _spec_rr(lambda a, b: a - b),
    "and": _spec_rr(lambda a, b: a & b),
    "c.and": _spec_rr(lambda a, b: a & b),
    "or": _spec_rr(lambda a, b: a | b),
    "c.or": _spec_rr(lambda a, b: a | b),
    "xor": _spec_rr(lambda a, b: a ^ b),
    "c.xor": _spec_rr(lambda a, b: a ^ b),
    "sll": _spec_rr(lambda a, b: a << (b & 63)),
    "srl": _spec_rr(lambda a, b: a >> (b & 63)),
    "sra": _spec_rr(lambda a, b: _s(a) >> (b & 63)),
    "slt": _spec_rr(lambda a, b: 1 if _s(a) < _s(b) else 0),
    "sltu": _spec_rr(lambda a, b: 1 if a < b else 0),
    "mul": _spec_rr(lambda a, b: a * b),
    "remu": _spec_rr(lambda a, b: a if b == 0 else a % b),
    "divu": _spec_rr(lambda a, b: _MASK64 if b == 0 else a // b),
    "c.mv": _spec_c_mv,
    "c.add": _spec_c_add,
    "lb": _spec_load(1, True),
    "lh": _spec_load(2, True),
    "lw": _spec_load(4, True),
    "ld": _spec_load(8, True),
    "c.lw": _spec_load(4, True),
    "c.ld": _spec_load(8, True),
    "c.lwsp": _spec_load(4, True),
    "c.ldsp": _spec_load(8, True),
    "lbu": _spec_load(1, False),
    "lhu": _spec_load(2, False),
    "lwu": _spec_load(4, False),
    "sb": _spec_store(1),
    "sh": _spec_store(2),
    "sw": _spec_store(4),
    "sd": _spec_store(8),
    "c.sw": _spec_store(4),
    "c.sd": _spec_store(8),
    "c.swsp": _spec_store(4),
    "c.sdsp": _spec_store(8),
    "beq": _spec_branch(lambda a, b: a == b),
    "bne": _spec_branch(lambda a, b: a != b),
    "blt": _spec_branch(lambda a, b: _s(a) < _s(b)),
    "bge": _spec_branch(lambda a, b: _s(a) >= _s(b)),
    "bltu": _spec_branch(lambda a, b: a < b),
    "bgeu": _spec_branch(lambda a, b: a >= b),
    "c.beqz": _spec_c_branch(True),
    "c.bnez": _spec_c_branch(False),
    "jal": _spec_jal,
    "c.j": _spec_c_j,
    "jalr": _spec_jalr,
}
