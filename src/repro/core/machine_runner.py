"""Measured-execution heterogeneous scheduling.

The discrete-event engine in :mod:`repro.core.scheduler` replays *one*
measured cost per (system, task kind, core kind) cell.  This module is
the heavyweight cross-check: every task is a *real binary* (its own
size, its own rewritten variants) executed through the full simulator
stack — CHBP-rewritten images, Chimera runtime fault handling, FAM
migration with architectural context transfer — under the same
work-stealing policy.  Benchmarks compare the two engines' makespans to
validate the DES abstraction (EXPERIMENTS.md deviation #6).

Fault tolerance: the scheduler survives cores dying or flaking mid-task.
A failed core is quarantined (immediately when dead, after a threshold
of flakes), its orphaned task is re-queued with exponential backoff —
resuming from a checksummed checkpoint when one survived on the same
pool flavor, restarting from entry otherwise — and when every extension
core is gone, extension tasks keep full forward progress on base cores
through the downgraded binary.  A task that exhausts its retry budget
ends in a structured :class:`~repro.sim.faults.UnrecoverableFault`
accounting entry, never a hang or a silent drop.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from repro.baselines.safer import SaferRewriter, SaferRuntime
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.binary import Binary
from repro.isa.extensions import RV64GC, RV64GCV
from repro.resilience.checkpoint import Checkpoint
from repro.resilience.executor import TaskExecution, run_task_on_core
from repro.resilience.failures import CoreFailureInjector
from repro.resilience.policy import DEFAULT_RETRY_POLICY, ResilienceStats, RetryPolicy
from repro.resilience.seeds import resolve_seed
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.sim.faults import IllegalInstructionFault, UnrecoverableFault
from repro.sim.machine import Core
from repro.telemetry import MetricsRegistry, current as telemetry_current

#: Systems the measured runner implements.
SYSTEMS = ("fam", "melf", "chimera", "safer")


@dataclass(frozen=True)
class HeteroTask:
    """One §6.1-style task with its own size."""

    task_id: int
    kind: str   # "base" (fibonacci) | "ext" (matmul)
    size: int   # fib iterations / matrix dimension


@dataclass
class MeasuredRunResult:
    """Outcome of one measured-execution scheduling run."""

    system: str
    makespan: int
    cpu_time: int
    migrations: int
    steals: int
    failures: int
    per_task_cycles: dict[int, int] = field(default_factory=dict)
    #: Extension tasks in the input, and how many of them completed on
    #: an extension core (the accelerated path).
    ext_tasks: int = 0
    accelerated_ext_tasks: int = 0
    #: Tasks that ended in a structured UnrecoverableFault.
    unrecoverable: int = 0
    #: task_id -> the UnrecoverableFault that ended it.
    task_faults: dict[int, UnrecoverableFault] = field(default_factory=dict)
    quarantined_cores: tuple[int, ...] = ()
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    @property
    def completed(self) -> int:
        return len(self.per_task_cycles)

    @property
    def accelerated_share(self) -> float:
        """Fraction of extension tasks that ran accelerated (0 when the
        degradation ladder pushed them all to base cores)."""
        if self.ext_tasks == 0:
            return 0.0
        return self.accelerated_ext_tasks / self.ext_tasks


def _build_task_binary(kind: str, size: int, variant: str) -> Binary:
    from repro.workloads.programs import FibonacciWorkload, MatMulWorkload

    if kind == "base":
        return FibonacciWorkload(iterations=size).build(variant)
    return MatMulWorkload(n=size).build(variant)


@lru_cache(maxsize=512)
def _prepared_binary(system: str, kind: str, size: int, on_ext: bool) -> tuple:
    """(binary, runtime factory descriptor) ready to run for one cell."""
    if system == "melf":
        variant = "ext" if (kind == "ext" and on_ext) else "base"
        return _build_task_binary(kind, size, variant), None
    if system == "fam":
        # FAM always runs the extension-compiled binary as-is.
        variant = "ext" if kind == "ext" else "base"
        return _build_task_binary(kind, size, variant), None
    source = _build_task_binary(kind, size, "ext" if kind == "ext" else "base")
    profile = RV64GCV if on_ext else RV64GC
    if system == "chimera":
        result = ChimeraRewriter().rewrite(source, profile)
        return result.binary, "chimera"
    if system == "safer":
        result = SaferRewriter().rewrite(source, profile)
        return result.binary, "safer"
    raise ValueError(f"unknown system {system!r}")


@dataclass
class _Pending:
    """A queued task plus its retry/checkpoint state."""

    task: HeteroTask
    migrated: bool = False      # FAM fault-and-migrate: extension pool only
    attempt: int = 1
    checkpoint: Optional[Checkpoint] = None
    not_before: int = 0         # earliest dispatch time (backoff)
    first_start: Optional[int] = None

    @property
    def pinned(self) -> bool:
        """May not be stolen across pools: FAM-migrated tasks (no
        downgraded image exists) and checkpointed resumes (the image
        matches exactly one core flavor)."""
        return self.migrated or self.checkpoint is not None


class MeasuredScheduler:
    """Work-stealing over real task executions (same policy as the DES)."""

    def __init__(self, n_base: int, n_ext: int, params: ArchParams = DEFAULT_ARCH,
                 *, max_instructions: int = 5_000_000,
                 max_steps: Optional[int] = None):
        self.n_base = n_base
        self.n_ext = n_ext
        self.params = params
        self.max_instructions = max_instructions
        #: Kernel-entry watchdog budget per execution (None = default).
        self.max_steps = max_steps

    def _execute(self, system: str, task: HeteroTask, core: Core, *,
                 checkpoint: Optional[Checkpoint] = None,
                 fail_event=None,
                 injector: Optional[CoreFailureInjector] = None) -> TaskExecution:
        on_ext = core.is_extension_core
        binary, runtime_kind = _prepared_binary(system, task.kind, task.size, on_ext)
        if runtime_kind == "chimera":
            def factory(kernel, _b=binary):
                # self_heal: an unexpected fault in a patched region
                # quarantines that one patch (verified patching) instead
                # of killing the task with UnrecoverableFault.
                runtime = ChimeraRuntime(_b, self_heal=True)
                runtime.install(kernel)
                return runtime
        elif runtime_kind == "safer":
            def factory(kernel, _b=binary):
                runtime = SaferRuntime(_b)
                runtime.install(kernel)
                return runtime
        else:
            factory = None
        return run_task_on_core(
            binary, factory, core,
            task_id=task.task_id, arch=self.params,
            max_instructions=self.max_instructions, max_steps=self.max_steps,
            checkpoint=checkpoint, fail_event=fail_event, injector=injector,
        )

    def run(self, tasks: list[HeteroTask], system: str, *,
            injector: Optional[CoreFailureInjector] = None,
            retry_policy: Optional[RetryPolicy] = None,
            quarantine_after: int = 2) -> MeasuredRunResult:
        if system not in SYSTEMS:
            raise ValueError(f"unknown system {system!r}")
        policy = retry_policy or DEFAULT_RETRY_POLICY
        n = self.n_base + self.n_ext
        cores = [Core(i, RV64GCV if i >= self.n_base else RV64GC, self.params)
                 for i in range(n)]
        is_ext = [c.is_extension_core for c in cores]
        queues: dict[bool, deque[_Pending]] = {False: deque(), True: deque()}
        for task in tasks:
            queues[task.kind == "ext"].append(_Pending(task))

        clock = [0] * n
        busy = [0] * n
        heap = [(0, i) for i in range(n)]
        heapq.heapify(heap)
        idle: set[int] = set()
        outstanding = len(tasks)
        per_task: dict[int, int] = {}
        makespan = 0
        ext_tasks = sum(1 for t in tasks if t.kind == "ext")
        #: Single source of truth for every event counter of this run;
        #: the result ledger and ResilienceStats are *derived* from it,
        #: so the two can no longer drift apart.
        m = MetricsRegistry()
        quarantined: set[int] = set()
        flake_counts = [0] * n
        task_faults: dict[int, UnrecoverableFault] = {}

        def pool_live(pool: bool) -> bool:
            return any(is_ext[i] == pool and i not in quarantined for i in range(n))

        def take(my_pool: bool, now: int):
            """Next runnable _Pending for a *my_pool* worker at *now*."""
            for idx, pending in enumerate(queues[my_pool]):
                if pending.not_before <= now:
                    del queues[my_pool][idx]
                    return pending, False
            for idx, pending in enumerate(queues[not my_pool]):
                if not pending.pinned and pending.not_before <= now:
                    del queues[not my_pool][idx]
                    return pending, True
            return None

        def next_ready(my_pool: bool, now: int) -> Optional[int]:
            """Earliest not_before of work this worker could run later."""
            times = [p.not_before for p in queues[my_pool] if p.not_before > now]
            times += [p.not_before for p in queues[not my_pool]
                      if not p.pinned and p.not_before > now]
            return min(times) if times else None

        def wake(pool: bool, when: int) -> None:
            """Wake an idle live worker — preferring *pool*, falling back to
            the other flavor (which can steal the work)."""
            for prefer in (True, False):
                ready = sorted(
                    (w for w in idle
                     if w not in quarantined and (is_ext[w] == pool) == prefer),
                    key=lambda w: clock[w],
                )
                if ready:
                    w = ready[0]
                    idle.discard(w)
                    heapq.heappush(heap, (max(when, clock[w]), w))
                    return

        def quarantine(w: int, now: int) -> None:
            if w in quarantined:
                return
            quarantined.add(w)
            m.inc("resilience.quarantines")
            pool = is_ext[w]
            if pool_live(pool):
                return
            # The pool just lost its last live core.  Checkpointed
            # resumes pinned here must restart from entry on the other
            # flavor; unpinned work gets stolen naturally; FAM-migrated
            # tasks have nowhere to go and hit the drain accounting.
            survivors: deque[_Pending] = deque()
            while queues[pool]:
                pending = queues[pool].popleft()
                if pending.checkpoint is not None and not pending.migrated \
                        and pool_live(not pool):
                    m.inc("resilience.restarts", reason="pool-lost")
                    pending.checkpoint = None
                    queues[not pool].append(pending)
                    wake(not pool, max(now, pending.not_before))
                else:
                    survivors.append(pending)
            queues[pool].extend(survivors)

        def declare_unrecoverable(pending: _Pending, reason: str) -> None:
            nonlocal outstanding
            m.inc("resilience.unrecoverable_tasks")
            task_faults[pending.task.task_id] = UnrecoverableFault(
                reason, attempts=pending.attempt)
            outstanding -= 1

        def requeue(pending: _Pending, now: int, *,
                    checkpoint: Optional[Checkpoint], reason: str) -> None:
            """Schedule a retry after a failed attempt, or give up."""
            task = pending.task
            attempt = pending.attempt + 1
            if policy.exhausted(attempt):
                declare_unrecoverable(
                    pending, f"task {task.task_id}: {reason}; retry budget "
                             f"exhausted after {pending.attempt} attempts")
                return
            if pending.first_start is not None and policy.past_deadline(
                    pending.first_start, now):
                declare_unrecoverable(
                    pending, f"task {task.task_id}: {reason}; past the "
                             f"{policy.deadline}-cycle deadline")
                return
            # Resume on the checkpoint's flavor when it is still alive;
            # otherwise steer to the surviving flavor and restart from
            # entry (the rewritten image differs per flavor).
            pool = checkpoint.pool_ext if checkpoint is not None \
                else (task.kind == "ext")
            if not pool_live(pool):
                if pending.migrated or not pool_live(not pool):
                    # FAM-migrated tasks have no downgraded image to
                    # fall back to; otherwise there is no core at all.
                    declare_unrecoverable(
                        pending, f"task {task.task_id}: {reason}; no live "
                                 "core can run it")
                    return
                pool = not pool
                checkpoint = None
            backoff = policy.backoff(attempt - 1)
            m.inc("resilience.retries")
            m.inc("resilience.backoff_cycles", backoff)
            m.inc("resilience.migrations")
            if checkpoint is None:
                m.inc("resilience.restarts", reason="no-checkpoint")
            queues[pool].append(_Pending(
                task, migrated=pending.migrated, attempt=attempt,
                checkpoint=checkpoint, not_before=now + backoff,
                first_start=pending.first_start,
            ))
            wake(pool, now + backoff)

        while heap:
            now, w = heapq.heappop(heap)
            if w in quarantined:
                continue
            my_pool = is_ext[w]
            m.observe("sched.queue_depth", len(queues[my_pool]),
                      pool="ext" if my_pool else "base")
            got = take(my_pool, now)
            if got is None:
                later = next_ready(my_pool, now)
                if later is not None:
                    # Work exists but is backing off; come back for it.
                    heapq.heappush(heap, (later, w))
                elif outstanding > 0:
                    idle.add(w)
                    clock[w] = now
                continue
            pending, stolen = got
            task = pending.task
            start = now + (self.params.steal_cost if stolen else 0)
            if stolen:
                m.inc("sched.steals", core=w)
            if pending.first_start is None:
                pending.first_start = start

            checkpoint = pending.checkpoint
            if checkpoint is not None:
                if injector is not None and injector.migration_dropped(task.task_id):
                    # MigrationLostFault territory: the in-flight image is
                    # gone; structured accounting, restart from entry.
                    m.inc("resilience.migrations_lost")
                    m.inc("resilience.restarts", reason="migration-lost")
                    checkpoint = None
                elif checkpoint.pool_ext != my_pool:
                    # Foreign-flavor image; restart from entry here.
                    m.inc("resilience.restarts", reason="foreign-flavor")
                    checkpoint = None

            fail_event = None
            if injector is not None:
                fail_event = injector.plan_execution(w, task.task_id, task.kind)

            execution = self._execute(system, task, cores[w],
                                      checkpoint=checkpoint,
                                      fail_event=fail_event, injector=injector)

            if execution.patch_rollbacks:
                m.inc("resilience.patch_rollbacks", execution.patch_rollbacks)
            if execution.patch_readmissions:
                m.inc("resilience.patch_readmissions",
                      execution.patch_readmissions)

            if execution.checkpoint_corrupt:
                # Detected at restore: the core did no work; retry from
                # entry after backoff.
                m.inc("resilience.checkpoint_failures")
                clock[w] = now
                pending.checkpoint = None
                requeue(pending, now, checkpoint=None,
                        reason="checkpoint failed validation")
                heapq.heappush(heap, (now, w))
                continue

            if execution.core_failure is not None:
                m.inc("resilience.core_faults", core=w)
                end = start + execution.cycles
                busy[w] += end - now
                clock[w] = end
                makespan = max(makespan, end)
                if execution.core_failure == "dead":
                    quarantine(w, end)
                else:
                    flake_counts[w] += 1
                    if flake_counts[w] >= quarantine_after:
                        quarantine(w, end)
                    else:
                        heapq.heappush(heap, (end, w))
                requeue(pending, end, checkpoint=execution.checkpoint,
                        reason=f"core {w} went {execution.core_failure} mid-task")
                continue

            fam_migrate = (
                system == "fam"
                and not my_pool
                and isinstance(execution.fault, IllegalInstructionFault)
                and execution.fault.kind == "unsupported-extension"
            )
            if fam_migrate:
                end = start + execution.cycles + self.params.migration_cost
                busy[w] += (start - now) + execution.cycles
                clock[w] = end
                makespan = max(makespan, end)
                heapq.heappush(heap, (end, w))
                if not pool_live(True):
                    # FAM has no downgraded binary to fall back to.
                    declare_unrecoverable(
                        pending, f"task {task.task_id}: needs an extension "
                                 "core but every extension core is quarantined")
                    continue
                m.inc("sched.migrations", reason="fam-unsupported")
                queues[True].append(_Pending(
                    task, migrated=True, attempt=pending.attempt,
                    first_start=pending.first_start))
                wake(True, end)
                continue

            if not execution.ok:
                m.inc("sched.task_failures")
            end = start + execution.cycles
            busy[w] += end - now
            clock[w] = end
            makespan = max(makespan, end)
            per_task[task.task_id] = execution.cycles
            outstanding -= 1
            if task.kind == "ext" and my_pool and execution.ok:
                m.inc("sched.accelerated_ext_tasks")
            if execution.resumed and checkpoint is not None \
                    and checkpoint.core_id != w:
                m.inc("resilience.checkpointed_migrations")
            heapq.heappush(heap, (end, w))

        # Drain: anything still queued has no live worker to run it.
        for pool in (False, True):
            while queues[pool]:
                pending = queues[pool].popleft()
                declare_unrecoverable(
                    pending, f"task {pending.task.task_id}: stranded — no "
                             "live core can run it")

        stats = ResilienceStats.from_metrics(m)
        telemetry = telemetry_current()
        if telemetry.enabled:
            telemetry.metrics.merge(m, engine="measured", system=system)
        return MeasuredRunResult(
            system=system,
            makespan=makespan,
            cpu_time=sum(busy),
            migrations=m.total("sched.migrations"),
            steals=m.total("sched.steals"),
            failures=m.total("sched.task_failures"),
            per_task_cycles=per_task,
            ext_tasks=ext_tasks,
            accelerated_ext_tasks=m.total("sched.accelerated_ext_tasks"),
            unrecoverable=stats.unrecoverable_tasks,
            task_faults=task_faults,
            quarantined_cores=tuple(sorted(quarantined)),
            resilience=stats,
        )


def varied_taskset(n_tasks: int, ext_share: float, *,
                   seed: Optional[int] = None) -> list[HeteroTask]:
    """A §6.1-style mix with per-task size variation.

    *seed* defaults to ``REPRO_FUZZ_SEED`` when set, else 11 (the
    historical default), for parity with the differential fuzz suite.
    """
    import random

    seed = resolve_seed(seed, default=11)
    rng = random.Random(seed)
    from repro.core.scheduler import mixed_taskset

    tasks = []
    for t in mixed_taskset(n_tasks, ext_share):
        if t.kind == "base":
            size = rng.randrange(2000, 6001, 500)
        else:
            size = rng.choice((8, 10, 12, 14))
        tasks.append(HeteroTask(t.task_id, t.kind, size))
    return tasks
