"""RVV vector unit state: vl/vtype and the 32 vector registers.

VLEN is 256 bits to match the paper's SpacemiT K1.  Only LMUL=1 and
SEW in {32, 64} are implemented — the subset every workload in the
evaluation uses.  Registers are backed by bytearrays so the downgrade
translator's "simulated extension registers in a data section" (§4.1)
has a well-defined byte-level image to be checked against in tests.
"""

from __future__ import annotations

from repro.isa.fields import sign_extend


class VectorUnit:
    """Architectural vector state for one hart."""

    def __init__(self, vlen: int = 256):
        if vlen % 64:
            raise ValueError("VLEN must be a multiple of 64")
        self.vlen = vlen
        self.vl = 0
        self.sew = 64
        self.regs: list[bytearray] = [bytearray(vlen // 8) for _ in range(32)]

    @property
    def vlmax(self) -> int:
        """Elements per register at the current SEW (LMUL=1)."""
        return self.vlen // self.sew

    def set_vl(self, avl: int, sew: int) -> int:
        """Implement ``vsetvli``: configure SEW and clamp vl to VLMAX."""
        if sew not in (32, 64):
            raise ValueError(f"unsupported SEW {sew}")
        self.sew = sew
        self.vl = min(avl, self.vlen // sew)
        return self.vl

    # -- element access ----------------------------------------------------

    def read_elem(self, reg: int, idx: int) -> int:
        """Read element *idx* of v*reg* as an unsigned int at current SEW."""
        width = self.sew // 8
        off = idx * width
        return int.from_bytes(self.regs[reg][off:off + width], "little")

    def write_elem(self, reg: int, idx: int, value: int) -> None:
        """Write element *idx* of v*reg* (wrapped to SEW)."""
        width = self.sew // 8
        off = idx * width
        self.regs[reg][off:off + width] = (value & ((1 << self.sew) - 1)).to_bytes(width, "little")

    def read_elems(self, reg: int, count: int | None = None) -> list[int]:
        """Read the first *count* (default vl) elements of v*reg*."""
        n = self.vl if count is None else count
        return [self.read_elem(reg, i) for i in range(n)]

    def write_elems(self, reg: int, values: list[int]) -> None:
        """Write *values* into the first elements of v*reg*."""
        for i, v in enumerate(values):
            self.write_elem(reg, i, v)

    def signed_elem(self, reg: int, idx: int) -> int:
        """Read element *idx* as a signed value."""
        return sign_extend(self.read_elem(reg, idx), self.sew)

    def reg_bytes(self, reg: int) -> bytes:
        """Snapshot the full register image (all VLEN/8 bytes)."""
        return bytes(self.regs[reg])

    def load_reg_bytes(self, reg: int, data: bytes) -> None:
        """Overwrite the full register image."""
        if len(data) != self.vlen // 8:
            raise ValueError("register image size mismatch")
        self.regs[reg][:] = data

    def snapshot(self) -> dict:
        """Full architectural snapshot (for migration / differential tests)."""
        return {
            "vl": self.vl,
            "sew": self.sew,
            "regs": [bytes(r) for r in self.regs],
        }

    def restore(self, snap: dict) -> None:
        """Restore a snapshot taken by :meth:`snapshot`."""
        self.vl = snap["vl"]
        self.sew = snap["sew"]
        for reg, data in zip(self.regs, snap["regs"]):
            reg[:] = data
