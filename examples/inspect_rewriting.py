#!/usr/bin/env python3
"""Anatomy of a rewrite: disassemble what CHBP actually does to a binary.

Shows, side by side:
  * the original text around a vector instruction;
  * the SMILE trampoline that replaced it (auipc gp / jalr gp bit
    patterns, and why the interior parcels fault);
  * the target block in .chimera.text (gp restore, translated code,
    copied neighbors, exit trampoline);
  * the fault-handling table.

Run:  python examples/inspect_rewriting.py
"""

from repro import ChimeraRewriter, ProgramBuilder, RV64GC
from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.disassembler import dump, format_instruction


def build():
    b = ProgramBuilder("inspect")
    b.add_words("buf", [1, 2, 3, 4] + [0] * 8)
    b.set_text("""
_start:
    li a0, {buf}
    li a1, 4
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    li a7, 93
    li a0, 0
    ecall
""")
    return b.build()


def main():
    binary = build()
    print("== original .text ==")
    print(dump(bytes(binary.text.data), binary.text.addr))

    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(binary, RV64GC)
    rewritten = result.binary
    print(f"\nrewrite stats: {dict((k, v) for k, v in result.stats.as_dict().items() if v)}")

    print("\n== patched .text (SMILE trampolines in place) ==")
    text = rewritten.text
    offset = 0
    while offset < text.size:
        addr = text.addr + offset
        try:
            instr = decode(text.data, offset, addr=addr)
            print(format_instruction(instr))
            offset += instr.length
        except IllegalEncodingError as exc:
            print(f"{addr:8x}:\t    ....\t<deterministic fault: {exc.kind}>")
            offset += 2

    print("\n== fault-handling table (erroneous entry -> redirect) ==")
    for key, value in result.fault_table:
        print(f"  {key:#x} -> {value:#x}")

    if rewritten.has_section(".chimera.text"):
        ct = rewritten.section(".chimera.text")
        print(f"\n== .chimera.text (target blocks) at {ct.addr:#x}, {ct.size} bytes ==")
        # Dump only the populated prefix around each block (zeros are
        # allocator padding from the SMILE placement lattice).
        data = bytes(ct.data)
        start = None
        for i in range(0, len(data) - 1, 2):
            if data[i:i + 2] != b"\x00\x00":
                start = i & ~1
                break
        if start is not None:
            end = len(data)
            while end > start and data[end - 2:end] == b"\x00\x00":
                end -= 2
            print(dump(data[start:end], ct.addr + start))

    print("\nHow to read the trampoline:")
    print(" * `auipc gp, ...` computes the target block address into gp;")
    print("   its upper parcel is a reserved >=48-bit prefix (P2 faults).")
    print(" * `jalr gp, ...(gp)` jumps there; executed ALONE (P1), gp still")
    print("   holds the ABI data-segment pointer -> exec fault in .data;")
    print("   its upper parcel decodes as reserved c.addiw rd=0 (P3 faults).")


if __name__ == "__main__":
    main()
