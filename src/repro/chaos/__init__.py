"""Chaos harness: adversarial fault injection for Chimera's rewriting.

Three layers:

* :mod:`repro.chaos.sweeper` — force an indirect jump to every byte of
  every patched region and classify the outcome (the paper's §3.2
  determinism argument, checked exhaustively);
* :mod:`repro.chaos.injector` — corrupt the runtime's own state (fault
  tables, gp, signal frames, decode caches, pending migrations) at its
  most delicate moments;
* graceful degradation in the runtime/kernel themselves — every
  injected failure must surface as a structured
  :class:`~repro.sim.faults.UnrecoverableFault`, bounded by the
  recovery-depth guard, never as a raw Python traceback.
"""

from repro.chaos.harness import (
    ALL_SCENARIOS,
    SWEEP_MODES,
    run_chaos,
    run_injector_scenarios,
    run_workload_sweeps,
    sweep_binary,
)
from repro.chaos.injector import Injector, PcAssertionInjector
from repro.chaos.pipeline_chaos import (
    InjectedPipelineKill,
    PipelineFailureInjector,
    run_pipeline_chaos,
)
from repro.chaos.outcomes import (
    ALL_OUTCOMES,
    BENIGN_UNDEFINED,
    DETERMINISTIC_KILL,
    HARD_FAILURES,
    PYTHON_CRASH,
    RECOVERED_REDIRECT,
    SILENT_DIVERGENCE,
    AttackResult,
    ChaosReport,
    ScenarioResult,
    SweepReport,
)
from repro.chaos.service_chaos import run_service_chaos
from repro.chaos.sweeper import TrampolineAttackSweeper

__all__ = [
    "ALL_OUTCOMES",
    "ALL_SCENARIOS",
    "AttackResult",
    "BENIGN_UNDEFINED",
    "ChaosReport",
    "DETERMINISTIC_KILL",
    "HARD_FAILURES",
    "InjectedPipelineKill",
    "Injector",
    "PYTHON_CRASH",
    "PcAssertionInjector",
    "PipelineFailureInjector",
    "RECOVERED_REDIRECT",
    "SILENT_DIVERGENCE",
    "SWEEP_MODES",
    "ScenarioResult",
    "SweepReport",
    "TrampolineAttackSweeper",
    "run_chaos",
    "run_injector_scenarios",
    "run_pipeline_chaos",
    "run_service_chaos",
    "run_workload_sweeps",
    "sweep_binary",
]
