"""Chaos sweep: every patched byte of every workload, both patching modes.

The acceptance bar for the chaos harness: forcing an indirect jump to
every byte offset of every patched region — trampoline heads, the jalr
(P1), the pinned mid-parcels (P2/P3), padding, trap sites — must never
produce silent divergence (unintended instructions executing past the
grace window) or a raw Python crash.  Swept for all kernel workloads
and a pair of synthetic SPEC profiles, under SMILE patching and under
the all-trap fallback configuration.
"""

import pytest

from repro.chaos import (
    BENIGN_UNDEFINED,
    DETERMINISTIC_KILL,
    RECOVERED_REDIRECT,
    SWEEP_MODES,
    PcAssertionInjector,
    sweep_binary,
)
from repro.workloads.programs import ALL_WORKLOADS
from repro.workloads.spec_profiles import PROFILES
from repro.workloads.synthetic import SyntheticBinary

#: Two synthetic SPEC profiles: the largest-code integer benchmark and a
#: high-ext-density fp one.  Scaled down hard — the sweep is per-byte.
SPEC_SAMPLES = ("gcc_r", "cactuBSSN_r")


def assert_clean(report, injector):
    assert report.ok, "hard failures:\n" + "\n".join(
        str(f) for f in report.hard_failures
    )
    counts = report.counts()
    if not report.results:
        # A scalar workload (e.g. fibonacci) has nothing to patch.
        pytest.skip(f"{report.binary}: no patched regions to attack")
    # Every attack landed in a promised bucket; the assertion injector
    # actually observed faults (pc propagation checked at each one).
    assert injector.checked > 0
    assert counts[DETERMINISTIC_KILL] > 0
    return counts


@pytest.mark.parametrize("mode", SWEEP_MODES)
@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
class TestKernelSweeps:
    def test_sweep_clean(self, name, mode):
        binary = ALL_WORKLOADS[name].build("ext")
        injector = PcAssertionInjector()
        report = sweep_binary(binary, mode=mode, injector=injector)
        counts = assert_clean(report, injector)
        if mode == "smile":
            # Legal head entries flow into .chimera.text.
            assert counts[RECOVERED_REDIRECT] > 0


@pytest.mark.parametrize("mode", SWEEP_MODES)
@pytest.mark.parametrize("name", SPEC_SAMPLES)
class TestSyntheticSweeps:
    def test_sweep_clean(self, name, mode):
        binary = SyntheticBinary(PROFILES[name], scale=512).build()
        injector = PcAssertionInjector()
        report = sweep_binary(
            binary, mode=mode, max_regions=24, injector=injector
        )
        assert_clean(report, injector)


class TestSweepAccounting:
    def test_region_cap_is_reported_not_silent(self):
        binary = SyntheticBinary(PROFILES["gcc_r"], scale=512).build()
        capped = sweep_binary(binary, mode="smile", max_regions=2)
        assert capped.skipped_regions > 0
        assert "skipped" in capped.summary()

    def test_every_offset_of_every_region_attacked(self):
        binary = ALL_WORKLOADS["dot"].build("ext")
        report = sweep_binary(binary, mode="smile")
        attacked = {r.addr for r in report.results}
        spans = {(r.region_start, r.region_end) for r in report.results}
        expected = {a for lo, hi in spans for a in range(lo, hi)}
        assert attacked == expected

    def test_offset_labels_cover_trampoline_anatomy(self):
        binary = ALL_WORKLOADS["dot"].build("ext")
        report = sweep_binary(binary, mode="smile")
        labels = {r.label for r in report.results}
        assert {"head", "P1", "P2", "P3", "misaligned"} <= labels

    def test_benign_only_for_unpromised_offsets(self):
        """benign-undefined may only appear where the paper promises
        nothing: non-boundary offsets or untouched bytes."""
        binary = ALL_WORKLOADS["memcpy"].build("ext")
        report = sweep_binary(binary, mode="smile")
        for r in report.results:
            if r.outcome == BENIGN_UNDEFINED:
                assert not (r.boundary and r.modified), str(r)
