"""Reserved/illegal encoding behavior — SMILE's fault surface."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.decoding import IllegalEncodingError, decode, instruction_length
from repro.isa.fields import p16, p32


def expect_illegal(data: bytes, kind: str | None = None):
    with pytest.raises(IllegalEncodingError) as exc:
        decode(data, 0)
    if kind is not None:
        assert exc.value.kind == kind
    return exc.value


class TestParcelLengthRules:
    def test_compressed_low_bits(self):
        assert instruction_length(0b01) == 2
        assert instruction_length(0b10) == 2
        assert instruction_length(0b00) == 2

    def test_32bit_low_bits(self):
        assert instruction_length(0b0000011) == 4  # load opcode

    def test_long_prefix_raises(self):
        # Any parcel whose low 5 bits are 11111 announces >=48-bit.
        with pytest.raises(IllegalEncodingError) as exc:
            instruction_length(0b11111)
        assert exc.value.kind == "long-prefix"

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_length_partition(self, parcel):
        """Every parcel is 2-byte, 4-byte, or a long-prefix fault."""
        try:
            assert instruction_length(parcel) in (2, 4)
        except IllegalEncodingError as exc:
            assert parcel & 0b11111 == 0b11111
            assert exc.kind == "long-prefix"


class TestReservedCompressed:
    def test_all_zero_parcel(self):
        expect_illegal(p16(0x0000), "reserved-compressed")

    def test_c_addiw_rd0(self):
        # Q1, funct3=001, rd=0 — the encoding SMILE's jalr parcel becomes.
        parcel = (0b001 << 13) | 0b01
        expect_illegal(p16(parcel), "reserved-compressed")

    def test_c_addi4spn_zero_imm(self):
        expect_illegal(p16(0b000_00000000_000_00), "reserved-compressed")

    def test_c_jr_x0(self):
        parcel = (0b100 << 13) | (0 << 12) | (0 << 7) | 0b10
        expect_illegal(p16(parcel), "reserved-compressed")

    def test_c_lwsp_rd0(self):
        parcel = (0b010 << 13) | (0 << 7) | 0b10
        expect_illegal(p16(parcel), "reserved-compressed")

    def test_c_lui_imm0(self):
        parcel = (0b011 << 13) | (5 << 7) | 0b01  # imm bits all zero
        expect_illegal(p16(parcel), "reserved-compressed")


class TestUnknown32Bit:
    def test_unknown_major_opcode(self):
        expect_illegal(p32(0b1111011), "unknown")  # custom-3 space

    def test_bad_branch_funct3(self):
        word = (0b010 << 12) | 0x63  # funct3=010 unused in BRANCH
        expect_illegal(p32(word), "unknown")

    def test_bad_system(self):
        word = (7 << 20) | 0x73
        expect_illegal(p32(word), "unknown")

    def test_unimplemented_vector_funct6(self):
        word = (0b111111 << 26) | (0b000 << 12) | 0x57  # OPIVV funct6=111111
        expect_illegal(p32(word))


class TestTruncation:
    def test_empty(self):
        expect_illegal(b"", "truncated")

    def test_half_of_32bit(self):
        expect_illegal(p32(0x00000033)[:2], "truncated")


class TestDecodeAddrBinding:
    def test_addr_recorded(self):
        from repro.isa.encoding import encode
        from repro.isa.instructions import Instruction

        data = encode(Instruction("jal", rd=0, imm=8))
        instr = decode(data, 0, addr=0x1000)
        assert instr.addr == 0x1000
        assert instr.target() == 0x1008
