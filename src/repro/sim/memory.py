"""Segmented virtual memory with permissions.

An :class:`AddressSpace` is a list of :class:`MemorySegment` objects.
Segments carry R/W/X permissions and may *share* their backing
``bytearray`` with segments of other address spaces — that sharing is
how MMViews (paper §4.3, Fig. 9) give every per-core rewritten binary
its own code mapping while all views see one data segment.
"""

from __future__ import annotations

from typing import Optional

from repro.elf.binary import Perm
from repro.sim.faults import SegmentationFault


class MemorySegment:
    """A contiguous mapped region backed by a (possibly shared) bytearray."""

    __slots__ = ("name", "base", "data", "perm", "version")

    def __init__(self, name: str, base: int, data: bytearray, perm: Perm):
        self.name = name
        self.base = base
        self.data = data
        self.perm = perm
        #: Bumped whenever executable bytes change, so CPUs can drop
        #: stale decode-cache entries (runtime rewriting path, §4.3).
        self.version = 0

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def __repr__(self) -> str:
        bits = "".join(
            flag.name.lower() if flag in self.perm else "-"
            for flag in (Perm.R, Perm.W, Perm.X)
        )
        return f"<seg {self.name} {self.base:#x}+{self.size:#x} {bits}>"


class AddressSpace:
    """A process address space: ordered segments plus access helpers."""

    def __init__(self, name: str = "as"):
        self.name = name
        self.segments: list[MemorySegment] = []

    # -- mapping -----------------------------------------------------------

    def map_segment(self, segment: MemorySegment) -> MemorySegment:
        """Map *segment*, refusing overlaps."""
        for existing in self.segments:
            if segment.base < existing.end and existing.base < segment.end:
                raise ValueError(f"{segment!r} overlaps {existing!r}")
        self.segments.append(segment)
        self.segments.sort(key=lambda s: s.base)
        return segment

    def map(self, name: str, base: int, size_or_data: int | bytearray, perm: Perm) -> MemorySegment:
        """Create and map a segment from a size or an existing bytearray."""
        data = bytearray(size_or_data) if isinstance(size_or_data, int) else size_or_data
        return self.map_segment(MemorySegment(name, base, data, perm))

    def segment_at(self, addr: int) -> Optional[MemorySegment]:
        """The segment containing *addr*, or None."""
        # Linear scan; address spaces here hold < 10 segments.
        for seg in self.segments:
            if seg.base <= addr < seg.end:
                return seg
        return None

    def segment_named(self, name: str) -> MemorySegment:
        """Look up a segment by name."""
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment named {name!r}")

    # -- typed access ------------------------------------------------------

    def _seg_for(self, addr: int, size: int, access: str, need: Perm) -> MemorySegment:
        seg = self.segment_at(addr)
        if seg is None or addr + size > seg.end:
            raise SegmentationFault(addr, access)
        if need not in seg.perm:
            raise SegmentationFault(addr, access)
        return seg

    def read(self, addr: int, size: int) -> bytes:
        """Permission-checked data read."""
        seg = self._seg_for(addr, size, "read", Perm.R)
        off = addr - seg.base
        return bytes(seg.data[off:off + size])

    def write(self, addr: int, data: bytes) -> None:
        """Permission-checked data write."""
        seg = self._seg_for(addr, len(data), "write", Perm.W)
        off = addr - seg.base
        seg.data[off:off + len(data)] = data
        if Perm.X in seg.perm:
            seg.version += 1  # store into W+X memory: cached decodes stale

    def fetch(self, addr: int, size: int) -> bytes:
        """Permission-checked instruction fetch (requires X).

        Executing from a non-executable segment — the fate of a partial
        SMILE execution — raises ``SegmentationFault(access="exec")``.
        """
        seg = self._seg_for(addr, size, "exec", Perm.X)
        off = addr - seg.base
        return bytes(seg.data[off:off + size])

    def fetch_segment(self, addr: int) -> MemorySegment:
        """The executable segment holding *addr* (for decode caching)."""
        return self._seg_for(addr, 1, "exec", Perm.X)

    def read_u64(self, addr: int) -> int:
        """Read a little-endian unsigned 64-bit value."""
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        """Write a little-endian 64-bit value."""
        self.write(addr, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    def read_u32(self, addr: int) -> int:
        """Read a little-endian unsigned 32-bit value."""
        return int.from_bytes(self.read(addr, 4), "little")

    def write_u32(self, addr: int, value: int) -> None:
        """Write a little-endian 32-bit value."""
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def patch_code(self, addr: int, data: bytes) -> None:
        """Kernel-privilege code patch: ignores W permission, bumps version.

        Used by the simulated kernel when Chimera rewrites an
        unrecognized instruction at runtime (§4.3).
        """
        seg = self.segment_at(addr)
        if seg is None or addr + len(data) > seg.end:
            raise SegmentationFault(addr, "write")
        off = addr - seg.base
        seg.data[off:off + len(data)] = data
        seg.version += 1

    def __repr__(self) -> str:
        return f"<AddressSpace {self.name} {self.segments}>"
