"""Unified tracing, metrics, and profiling for the whole pipeline.

One :class:`Telemetry` object carries a :class:`~repro.telemetry.spans.SpanTracer`
(nested spans, wall + sim-cycle clocks, Chrome ``trace_event`` export)
and a :class:`~repro.telemetry.metrics.MetricsRegistry` (labeled
counters/gauges/histograms).  Activate it for a region of code with
:func:`use`; instrumented layers — the scanner, the CHBP patcher, both
schedulers, the simulated kernel, the runtime, the resilience machinery,
the chaos sweeper — consult :func:`current` and record into whatever is
active.

When nothing is active, :func:`current` returns :data:`NULL_TELEMETRY`,
whose ``enabled`` flag is False and whose sinks are no-ops.  Every
instrumented site is gated on that flag (and the per-instruction tally
tracer is only *attached* when enabled), so disabled telemetry costs
nothing on the simulator's hot path.

Typical use::

    from repro.telemetry import Telemetry, use

    telemetry = Telemetry()
    with use(telemetry):
        result = rewriter.rewrite(binary, RV64GC)   # spans + patch.* metrics
        kernel.run(process, core)                   # cpu.instret{class=...}, sim.faults{...}
    telemetry.write("out/")                         # trace.json + metrics.json
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional

from repro.telemetry.clock import SimCycleClock, WallClock
from repro.telemetry.metrics import Histogram, MetricsRegistry, percentile
from repro.telemetry.spans import Span, SpanTracer, spans_from_chrome

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current",
    "use",
    "profiled",
    "MetricsRegistry",
    "Histogram",
    "percentile",
    "SpanTracer",
    "Span",
    "spans_from_chrome",
    "SimCycleClock",
    "WallClock",
]


class Telemetry:
    """An active tracing + metrics session."""

    enabled = True

    def __init__(self):
        self.tracer = SpanTracer()
        self.metrics = MetricsRegistry()

    def span(self, name: str, **args):
        """Context manager timing one phase (both clocks)."""
        return self.tracer.span(name, **args)

    def bind_cycles(self, source: Callable[[], int]):
        """Bind the sim-cycle clock to *source* for a region (e.g.
        ``lambda: cpu.cycles`` for the duration of a kernel run)."""
        return self.tracer.cycles.bind(source)

    def write(self, outdir) -> dict:
        """Dump ``trace.json`` + ``metrics.json`` into *outdir*; returns
        the written paths (see :mod:`repro.telemetry.export`)."""
        from repro.telemetry.export import write_telemetry

        return write_telemetry(self, outdir)


class _NullMetrics:
    """No-op sink with the full MetricsRegistry recording surface."""

    __slots__ = ()

    def inc(self, name, amount=1, **labels):
        pass

    def gauge(self, name, value, **labels):
        pass

    def observe(self, name, value, **labels):
        pass

    def merge(self, other, **extra_labels):
        pass

    def counter(self, name, **labels):
        return 0

    def total(self, name):
        return 0

    def series(self, name):
        return []


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _NullBinding:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_BINDING = _NullBinding()


class NullTelemetry:
    """The disabled sink: every operation is a no-op."""

    enabled = False
    metrics = _NullMetrics()

    def span(self, name: str, **args):
        return _NULL_SPAN

    def bind_cycles(self, source):
        return _NULL_BINDING

    def write(self, outdir) -> dict:
        raise RuntimeError("telemetry is disabled; nothing to write")


NULL_TELEMETRY = NullTelemetry()

_active: "Telemetry | NullTelemetry" = NULL_TELEMETRY


def current() -> "Telemetry | NullTelemetry":
    """The telemetry sink instrumented code should record into."""
    return _active


@contextmanager
def use(telemetry: Telemetry):
    """Activate *telemetry* for the duration of the block."""
    global _active
    previous = _active
    _active = telemetry
    try:
        yield telemetry
    finally:
        _active = previous


def profiled(name: Optional[str] = None):
    """Decorator timing every call of the function as a span.

    ``@profiled()`` uses the function's qualified name; ``@profiled("x")``
    overrides it.  When telemetry is disabled the wrapper is a single
    attribute check away from a direct call.
    """
    import functools

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            telemetry = _active
            if not telemetry.enabled:
                return fn(*args, **kwargs)
            with telemetry.span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
