"""Retry/backoff policy and the resilience counters.

The degradation ladder both schedulers implement:

1. a failed execution is retried with exponential backoff, up to a
   per-task attempt budget and optional cycle deadline;
2. a core that dies — or flakes repeatedly — is *quarantined*: it takes
   no further work and its orphaned task is re-queued to the survivors;
3. when every extension core is quarantined, extension tasks keep full
   forward progress on base cores via the downgraded binary (that is the
   point of rewriting one binary per core flavor);
4. a task that exhausts its budget ends in a structured
   :class:`~repro.sim.faults.UnrecoverableFault` accounting entry —
   never a hang, never a silent drop.

:class:`ResilienceStats` is the ledger for all of it, reported through
``MeasuredRunResult`` / ``ScheduleResult``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry budget and exponential-backoff schedule (cycles)."""

    max_attempts: int = 4
    base_backoff: int = 2_000
    multiplier: int = 2
    max_backoff: int = 64_000
    #: Optional wall-clock (cycle) budget from a task's first dispatch;
    #: a retry past the deadline is refused and the task is declared
    #: unrecoverable.  None = no deadline.
    deadline: int | None = None

    def backoff(self, retry: int) -> int:
        """Backoff before retry number *retry* (1-based), capped."""
        if retry < 1:
            return 0
        raw = self.base_backoff * (self.multiplier ** (retry - 1))
        return min(raw, self.max_backoff)

    def exhausted(self, attempt: int) -> bool:
        """True once *attempt* (1-based) exceeds the attempt budget."""
        return attempt > self.max_attempts

    def past_deadline(self, first_start: int, now: int) -> bool:
        return self.deadline is not None and now - first_start > self.deadline

    def backoff_seconds(self, retry: int) -> float:
        """Backoff for wall-clock users, reading the cycle fields as
        milliseconds — the verification pipeline sleeps real time
        between re-dispatches, it does not burn simulated cycles."""
        return self.backoff(retry) / 1000.0


DEFAULT_RETRY_POLICY = RetryPolicy()

#: Retry budget for the fault-isolated verification pipeline: backoff
#: fields are read as *milliseconds* (``backoff_seconds``).  Three
#: attempts per region keeps a persistently crashing region from
#: stalling a release for more than ~a second before quarantine.
PIPELINE_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_backoff=50, multiplier=4, max_backoff=2_000)


#: Circuit-breaker states (the classic three-state machine).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Per-server circuit breaker for the fleet client.

    ``closed`` — requests flow; consecutive transport failures are
    counted.  At ``failure_threshold`` the breaker trips ``open``:
    requests fail fast (no connection attempt) until a jittered probe
    time arrives, at which point the breaker goes ``half-open`` and
    admits exactly one probe.  A successful probe closes the breaker
    and resets every counter; a failed probe re-opens it with an
    escalating delay (``open_backoff_multiplier ** trips``, capped at
    ``max_reset_seconds``).

    The jitter keeps a fleet of clients from re-probing a recovering
    server in lockstep.  All timing uses ``time.monotonic()`` (callers
    may inject a clock for tests).
    """

    failure_threshold: int = 3
    reset_seconds: float = 0.5
    max_reset_seconds: float = 15.0
    open_backoff_multiplier: float = 2.0
    jitter: float = 0.25
    rng: random.Random = field(default_factory=random.Random)
    clock: object = time.monotonic

    state: str = BREAKER_CLOSED
    consecutive_failures: int = 0
    #: Times the breaker tripped open since the last full close.
    trips: int = 0
    #: Lifetime trip count (telemetry; never reset).
    total_trips: int = 0
    _probe_at: float = 0.0
    _probing: bool = False

    def allow(self) -> bool:
        """May the caller attempt a request now?

        ``half-open`` admits a single caller (the probe); concurrent
        callers keep failing fast until the probe settles.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if self.clock() >= self._probe_at:
                self.state = BREAKER_HALF_OPEN
            else:
                return False
        if self.state == BREAKER_HALF_OPEN:
            if self._probing:
                return False
            self._probing = True
            return True
        return True

    def record_success(self) -> None:
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self.consecutive_failures += 1
        if (self.state == BREAKER_HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            self._trip()

    def retry_in(self) -> float:
        """Seconds until the next probe is allowed (0 when flowing)."""
        if self.state == BREAKER_CLOSED:
            return 0.0
        return max(0.0, self._probe_at - self.clock())

    def _trip(self) -> None:
        self.trips += 1
        self.total_trips += 1
        delay = min(
            self.reset_seconds * (self.open_backoff_multiplier
                                  ** (self.trips - 1)),
            self.max_reset_seconds)
        spread = 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        self.state = BREAKER_OPEN
        self._probe_at = self.clock() + delay * spread


@dataclass
class ResilienceStats:
    """Counters for the fault-tolerant execution layer."""

    #: Core failures observed (kills + flakes), i.e. CoreFault events.
    core_faults: int = 0
    #: Tasks moved off a failed core onto a survivor.
    migrations: int = 0
    #: Migrations that resumed from a validated checkpoint on a
    #: *different* core (the §6.1 fault-and-migrate path, checkpointed).
    checkpointed_migrations: int = 0
    #: Executions that restarted from entry (corrupt/lost/foreign-pool
    #: checkpoint, or no checkpoint at all).
    restarts: int = 0
    #: Re-executions scheduled after a failure.
    retries: int = 0
    #: Total cycles spent waiting out exponential backoff.
    backoff_cycles: int = 0
    #: Cores removed from service (dead, or flaky past the threshold).
    quarantines: int = 0
    #: Checkpoints that failed checksum validation at restore.
    checkpoint_failures: int = 0
    #: Checkpointed migrations dropped in flight.
    migrations_lost: int = 0
    #: Tasks that ended in a structured UnrecoverableFault.
    unrecoverable_tasks: int = 0
    #: Self-healing (verified patching): patches quarantined back to the
    #: trap-fallback encoding at runtime, and patches re-verified and
    #: re-admitted after backoff.
    patch_rollbacks: int = 0
    patch_readmissions: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))

    @classmethod
    def from_metrics(cls, registry) -> "ResilienceStats":
        """Derive the ledger from a run-local metrics registry.

        Each field is the sum of the ``resilience.<field>`` counter
        across its label sets, making the registry the single source of
        truth — the schedulers no longer maintain parallel tallies that
        can drift from the metrics they report.
        """
        fields = cls.__dataclass_fields__
        return cls(**{name: registry.total(f"resilience.{name}") for name in fields})

    def merge(self, other: "ResilienceStats") -> None:
        for key, value in vars(other).items():
            setattr(self, key, getattr(self, key) + value)

    def summary(self) -> str:
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return ", ".join(parts) or "clean run"
