"""Retry/backoff policy and the resilience counters.

The degradation ladder both schedulers implement:

1. a failed execution is retried with exponential backoff, up to a
   per-task attempt budget and optional cycle deadline;
2. a core that dies — or flakes repeatedly — is *quarantined*: it takes
   no further work and its orphaned task is re-queued to the survivors;
3. when every extension core is quarantined, extension tasks keep full
   forward progress on base cores via the downgraded binary (that is the
   point of rewriting one binary per core flavor);
4. a task that exhausts its budget ends in a structured
   :class:`~repro.sim.faults.UnrecoverableFault` accounting entry —
   never a hang, never a silent drop.

:class:`ResilienceStats` is the ledger for all of it, reported through
``MeasuredRunResult`` / ``ScheduleResult``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry budget and exponential-backoff schedule (cycles)."""

    max_attempts: int = 4
    base_backoff: int = 2_000
    multiplier: int = 2
    max_backoff: int = 64_000
    #: Optional wall-clock (cycle) budget from a task's first dispatch;
    #: a retry past the deadline is refused and the task is declared
    #: unrecoverable.  None = no deadline.
    deadline: int | None = None

    def backoff(self, retry: int) -> int:
        """Backoff before retry number *retry* (1-based), capped."""
        if retry < 1:
            return 0
        raw = self.base_backoff * (self.multiplier ** (retry - 1))
        return min(raw, self.max_backoff)

    def exhausted(self, attempt: int) -> bool:
        """True once *attempt* (1-based) exceeds the attempt budget."""
        return attempt > self.max_attempts

    def past_deadline(self, first_start: int, now: int) -> bool:
        return self.deadline is not None and now - first_start > self.deadline

    def backoff_seconds(self, retry: int) -> float:
        """Backoff for wall-clock users, reading the cycle fields as
        milliseconds — the verification pipeline sleeps real time
        between re-dispatches, it does not burn simulated cycles."""
        return self.backoff(retry) / 1000.0


DEFAULT_RETRY_POLICY = RetryPolicy()

#: Retry budget for the fault-isolated verification pipeline: backoff
#: fields are read as *milliseconds* (``backoff_seconds``).  Three
#: attempts per region keeps a persistently crashing region from
#: stalling a release for more than ~a second before quarantine.
PIPELINE_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_backoff=50, multiplier=4, max_backoff=2_000)


@dataclass
class ResilienceStats:
    """Counters for the fault-tolerant execution layer."""

    #: Core failures observed (kills + flakes), i.e. CoreFault events.
    core_faults: int = 0
    #: Tasks moved off a failed core onto a survivor.
    migrations: int = 0
    #: Migrations that resumed from a validated checkpoint on a
    #: *different* core (the §6.1 fault-and-migrate path, checkpointed).
    checkpointed_migrations: int = 0
    #: Executions that restarted from entry (corrupt/lost/foreign-pool
    #: checkpoint, or no checkpoint at all).
    restarts: int = 0
    #: Re-executions scheduled after a failure.
    retries: int = 0
    #: Total cycles spent waiting out exponential backoff.
    backoff_cycles: int = 0
    #: Cores removed from service (dead, or flaky past the threshold).
    quarantines: int = 0
    #: Checkpoints that failed checksum validation at restore.
    checkpoint_failures: int = 0
    #: Checkpointed migrations dropped in flight.
    migrations_lost: int = 0
    #: Tasks that ended in a structured UnrecoverableFault.
    unrecoverable_tasks: int = 0
    #: Self-healing (verified patching): patches quarantined back to the
    #: trap-fallback encoding at runtime, and patches re-verified and
    #: re-admitted after backoff.
    patch_rollbacks: int = 0
    patch_readmissions: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))

    @classmethod
    def from_metrics(cls, registry) -> "ResilienceStats":
        """Derive the ledger from a run-local metrics registry.

        Each field is the sum of the ``resilience.<field>`` counter
        across its label sets, making the registry the single source of
        truth — the schedulers no longer maintain parallel tallies that
        can drift from the metrics they report.
        """
        fields = cls.__dataclass_fields__
        return cls(**{name: registry.total(f"resilience.{name}") for name in fields})

    def merge(self, other: "ResilienceStats") -> None:
        for key, value in vars(other).items():
            setattr(self, key, getattr(self, key) + value)

    def summary(self) -> str:
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return ", ".join(parts) or "clean run"
