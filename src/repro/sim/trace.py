"""Backward-compatible shim: tracers moved to :mod:`repro.telemetry.exec_trace`.

The execution tracers grew an instruction-classification layer and now
live with the rest of the observability stack under ``repro.telemetry``.
This module keeps the old import path working.
"""

from repro.telemetry.exec_trace import (
    BranchProfile,
    HotspotProfile,
    InstructionTrace,
    MultiTracer,
    RegionProfile,
    attach,
)

__all__ = [
    "InstructionTrace",
    "HotspotProfile",
    "RegionProfile",
    "BranchProfile",
    "MultiTracer",
    "attach",
]
