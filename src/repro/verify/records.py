"""Per-patch provenance records: what the patcher did, byte for byte.

A :class:`PatchRecord` is the unit both halves of verified patching
operate on (DESIGN.md "Verified patching"):

* the static admission gate re-checks every record's invariants against
  the released bytes before a binary ships;
* the runtime rollback journal uses the same record to undo exactly one
  patch — restore ``original_bytes``, drop the record's fault-table
  entries, and re-trap the extension sources the restore resurrects.

Records are frozen and serialize to primitive tuples (hex strings for
byte fields) so they survive checkpoint digests and JSON report export
unchanged.  This module must stay import-light: the patcher imports it,
so it cannot pull in analysis/runtime code.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PatchRecord:
    """One patched region of original text and everything needed to
    verify or undo it."""

    #: Original-address span [start, end) the patch overwrote.
    start: int
    end: int
    #: "smile" (gp trampoline), "smile-dp" (Fig. 5 data-pointer
    #: trampoline) or "trap" (ebreak fallback).
    kind: str
    #: Text bytes of [start, end) before / after patching.
    original_bytes: bytes
    patched_bytes: bytes
    #: Entry address of the target block in .chimera.text.
    block_addr: int
    #: First original pc where normal flow rejoins original text (the
    #: exit position for trampolines, ``addr + length`` for traps).
    resume: int
    #: SMILE jump register (gp, or the Fig. 5 data-pointer register).
    smile_reg: int
    #: (boundary addr, redirect) fault-table entries this patch owns.
    fault_entries: tuple[tuple[int, int], ...] = ()
    #: (trap addr, target) trap-table entries this patch owns.
    trap_entries: tuple[tuple[int, int], ...] = ()
    #: (addr, encoding hex) of extension sources a rollback resurrects;
    #: each needs a trap-fallback re-patch to stay runnable on the
    #: target core.  Empty for "trap" records (golden restore suffices).
    sources: tuple[tuple[int, str], ...] = ()

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def source_bytes(self, addr: int) -> bytes:
        for saddr, shex in self.sources:
            if saddr == addr:
                return bytes.fromhex(shex)
        raise KeyError(hex(addr))

    # -- serialization ------------------------------------------------------

    def as_state(self) -> tuple:
        """Deterministic primitive form (checkpoint/JSON safe)."""
        return (
            self.start,
            self.end,
            self.kind,
            self.original_bytes.hex(),
            self.patched_bytes.hex(),
            self.block_addr,
            self.resume,
            self.smile_reg,
            tuple(tuple(e) for e in self.fault_entries),
            tuple(tuple(e) for e in self.trap_entries),
            tuple(tuple(s) for s in self.sources),
        )

    @classmethod
    def from_state(cls, state) -> "PatchRecord":
        (start, end, kind, orig, patched, block, resume, reg,
         faults, traps, sources) = state
        return cls(
            start=start, end=end, kind=kind,
            original_bytes=bytes.fromhex(orig),
            patched_bytes=bytes.fromhex(patched),
            block_addr=block, resume=resume, smile_reg=reg,
            fault_entries=tuple(tuple(e) for e in faults),
            trap_entries=tuple(tuple(e) for e in traps),
            sources=tuple(tuple(s) for s in sources),
        )


def record_for(records, addr) -> "PatchRecord | None":
    """The record whose span contains *addr*, if any."""
    if addr is None:
        return None
    for rec in records:
        if rec.contains(addr):
            return rec
    return None
