"""Small-surface coverage: builder/loader/instruction/FAM/cfg corners."""

import pytest

from repro.elf.builder import ProgramBuilder
from repro.elf.loader import load_binary, make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.isa.instructions import Instruction, RawBytes
from repro.sim.machine import Core, Kernel


class TestBuilderCorners:
    def test_add_data_accepts_size_or_bytes(self):
        b = ProgramBuilder("t")
        a1 = b.add_data("zeros", 16)
        a2 = b.add_data("blob", b"\x01\x02\x03")
        b.set_text("_start:\nret\n")
        binary = b.build()
        assert binary.read(a1, 16) == bytes(16)
        assert binary.read(a2, 3) == b"\x01\x02\x03"

    def test_data_addr_of_matches_build(self):
        b = ProgramBuilder("t")
        b.add_words("first", [1])
        b.add_words("second", [2, 3])
        pre = b.data_addr_of("second")
        b.set_text("_start:\nret\n")
        binary = b.build()
        assert binary.symbol_addr("second") == pre
        with pytest.raises(KeyError):
            b.data_addr_of("nope")

    def test_alignment_respected(self):
        b = ProgramBuilder("t")
        b.add_data("odd", b"x", align=1)
        addr = b.add_words("aligned", [1], width=8)
        assert addr % 8 == 0

    def test_custom_bases(self):
        b = ProgramBuilder("t", text_base=0x20000, data_base=0x600000)
        b.add_words("d", [9])
        b.set_text("_start:\nret\n")
        binary = b.build()
        assert binary.entry == 0x20000
        assert binary.data.addr == 0x600000
        assert binary.global_pointer == 0x600800


class TestLoaderCorners:
    def _binary(self):
        b = ProgramBuilder("t")
        b.add_words("d", [1])
        b.set_text("_start:\nret\n")
        return b.build()

    def test_without_stack(self):
        space = load_binary(self._binary(), with_stack=False)
        assert all(seg.name != "[stack]" for seg in space.segments)

    def test_stack_shared_between_views(self):
        binary = self._binary()
        s1 = load_binary(binary)
        s2 = load_binary(binary, share_data_from=s1)
        stack1 = s1.segment_named("[stack]")
        stack2 = s2.segment_named("[stack]")
        assert stack1.data is stack2.data

    def test_no_copy_mode_aliases_binary(self):
        binary = self._binary()
        space = load_binary(binary, copy_sections=False)
        space.write(binary.data.addr, b"\x42")
        assert binary.data.data[0] == 0x42


class TestInstructionHelpers:
    def test_target_requires_addr(self):
        j = Instruction("jal", rd=0, imm=8)
        assert j.target() is None
        assert j.with_addr(0x100).target() == 0x108

    def test_indirect_has_no_target(self):
        r = Instruction("jalr", rd=0, rs1=1, imm=0, addr=0x100)
        assert r.target() is None
        assert r.is_indirect_jump()

    def test_regs_written_excludes_x0(self):
        assert Instruction("addi", rd=0, rs1=5, imm=1).regs_written() == frozenset()
        assert Instruction("addi", rd=7, rs1=5, imm=1).regs_written() == {7}

    def test_copy_is_independent(self):
        a = Instruction("addi", rd=1, rs1=2, imm=3, addr=0x10)
        b = a.copy()
        b.imm = 99
        assert a.imm == 3

    def test_rawbytes_repr(self):
        raw = RawBytes(b"\xde\xad", addr=0x40)
        assert "dead" in str(raw)
        assert raw.length == 2

    def test_str_forms(self):
        assert "addi" in str(Instruction("addi", rd=1, rs1=2, imm=3))
        assert "0x10:" in str(Instruction("c.nop", length=2, addr=0x10))


class TestFamCorners:
    def test_start_on_ext_never_migrates(self):
        from repro.baselines.fam import FamRuntime
        from repro.workloads.programs import MatMulWorkload

        binary = MatMulWorkload(n=6).build("ext")
        proc = make_process(binary)
        outcome = FamRuntime().run(proc, Core(0, RV64GC), Core(1, RV64GCV),
                                   start_on_base=False)
        assert outcome.migrations == 0
        assert outcome.result.ok


class TestCfgCorners:
    def test_block_at_vs_containing(self):
        from repro.analysis.cfg import build_cfg
        from repro.analysis.scan import RecursiveScanner

        b = ProgramBuilder("t")
        b.set_text("_start:\nnop\nnop\nbeqz a0, out\nnop\nout:\nret\n")
        binary = b.build()
        cfg = build_cfg(RecursiveScanner().scan(binary))
        entry_block = cfg.block_at(binary.entry)
        assert entry_block is not None
        mid = binary.entry + 4
        assert cfg.block_at(mid) is None
        assert cfg.block_containing(mid) is entry_block
        assert cfg.block_containing(0xDEAD) is None
        assert len(entry_block) >= 3
        assert list(entry_block)  # iterable


class TestCostCompressed:
    def test_compressed_memory_costs_match_wide_forms(self):
        from repro.sim.cost import CostModel

        m = CostModel()
        wide = m.instruction_cost(Instruction("ld", rd=8, rs1=9, imm=0))
        narrow = m.instruction_cost(Instruction("c.ld", rd=8, rs1=9, imm=0, length=2))
        assert wide == narrow
