"""Measured-execution heterogeneous scheduling.

The discrete-event engine in :mod:`repro.core.scheduler` replays *one*
measured cost per (system, task kind, core kind) cell.  This module is
the heavyweight cross-check: every task is a *real binary* (its own
size, its own rewritten variants) executed through the full simulator
stack — CHBP-rewritten images, Chimera runtime fault handling, FAM
migration with architectural context transfer — under the same
work-stealing policy.  Benchmarks compare the two engines' makespans to
validate the DES abstraction (EXPERIMENTS.md deviation #6).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from repro.baselines.safer import SaferRewriter, SaferRuntime
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.binary import Binary
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.sim.faults import IllegalInstructionFault
from repro.sim.machine import Core, Kernel

#: Systems the measured runner implements.
SYSTEMS = ("fam", "melf", "chimera", "safer")


@dataclass(frozen=True)
class HeteroTask:
    """One §6.1-style task with its own size."""

    task_id: int
    kind: str   # "base" (fibonacci) | "ext" (matmul)
    size: int   # fib iterations / matrix dimension


@dataclass
class MeasuredRunResult:
    """Outcome of one measured-execution scheduling run."""

    system: str
    makespan: int
    cpu_time: int
    migrations: int
    steals: int
    failures: int
    per_task_cycles: dict[int, int] = field(default_factory=dict)


def _build_task_binary(kind: str, size: int, variant: str) -> Binary:
    from repro.workloads.programs import FibonacciWorkload, MatMulWorkload

    if kind == "base":
        return FibonacciWorkload(iterations=size).build(variant)
    return MatMulWorkload(n=size).build(variant)


@lru_cache(maxsize=512)
def _prepared_binary(system: str, kind: str, size: int, on_ext: bool) -> tuple:
    """(binary, runtime factory descriptor) ready to run for one cell."""
    if system == "melf":
        variant = "ext" if (kind == "ext" and on_ext) else "base"
        return _build_task_binary(kind, size, variant), None
    if system == "fam":
        # FAM always runs the extension-compiled binary as-is.
        variant = "ext" if kind == "ext" else "base"
        return _build_task_binary(kind, size, variant), None
    source = _build_task_binary(kind, size, "ext" if kind == "ext" else "base")
    profile = RV64GCV if on_ext else RV64GC
    if system == "chimera":
        result = ChimeraRewriter().rewrite(source, profile)
        return result.binary, "chimera"
    if system == "safer":
        result = SaferRewriter().rewrite(source, profile)
        return result.binary, "safer"
    raise ValueError(f"unknown system {system!r}")


def _run_one(system: str, task: HeteroTask, on_ext: bool,
             arch: ArchParams, max_instructions: int) -> tuple[int, bool, bool]:
    """Execute one task; returns (cycles, ok, needs_migration)."""
    binary, runtime_kind = _prepared_binary(system, task.kind, task.size, on_ext)
    kernel = Kernel(arch)
    if runtime_kind == "chimera":
        ChimeraRuntime(binary).install(kernel)
    elif runtime_kind == "safer":
        SaferRuntime(binary).install(kernel)
    core = Core(0, RV64GCV if on_ext else RV64GC, arch)
    proc = make_process(binary)
    result = kernel.run(proc, core, max_instructions=max_instructions)
    if (
        system == "fam"
        and not on_ext
        and isinstance(result.fault, IllegalInstructionFault)
        and result.fault.kind == "unsupported-extension"
    ):
        return result.cycles, True, True
    return result.cycles, result.ok, False


class MeasuredScheduler:
    """Work-stealing over real task executions (same policy as the DES)."""

    def __init__(self, n_base: int, n_ext: int, params: ArchParams = DEFAULT_ARCH,
                 *, max_instructions: int = 5_000_000):
        self.n_base = n_base
        self.n_ext = n_ext
        self.params = params
        self.max_instructions = max_instructions

    def run(self, tasks: list[HeteroTask], system: str) -> MeasuredRunResult:
        if system not in SYSTEMS:
            raise ValueError(f"unknown system {system!r}")
        n = self.n_base + self.n_ext
        is_ext = [i >= self.n_base for i in range(n)]
        queues: dict[bool, deque[tuple[HeteroTask, bool]]] = {False: deque(), True: deque()}
        for task in tasks:
            queues[task.kind == "ext"].append((task, False))

        clock = [0] * n
        busy = [0] * n
        heap = [(0, i) for i in range(n)]
        heapq.heapify(heap)
        idle: set[int] = set()
        outstanding = len(tasks)
        migrations = steals = failures = 0
        per_task: dict[int, int] = {}

        def take(my_pool: bool):
            if queues[my_pool]:
                return queues[my_pool].popleft()[0], False
            for idx, (task, pinned) in enumerate(queues[not my_pool]):
                if not pinned:
                    del queues[not my_pool][idx]
                    return task, True
            return None

        def wake(pool: bool, now: int):
            for w in sorted(idle, key=lambda w: clock[w]):
                if is_ext[w] == pool:
                    idle.discard(w)
                    heapq.heappush(heap, (max(now, clock[w]), w))
                    return

        while heap:
            now, w = heapq.heappop(heap)
            got = take(is_ext[w])
            if got is None:
                if outstanding > 0:
                    idle.add(w)
                    clock[w] = now
                continue
            task, stolen = got
            start = now + (self.params.steal_cost if stolen else 0)
            steals += int(stolen)
            cycles, ok, migrate = _run_one(
                system, task, is_ext[w], self.params, self.max_instructions
            )
            if migrate:
                end = start + cycles + self.params.migration_cost
                busy[w] += (start - now) + cycles
                clock[w] = end
                migrations += 1
                queues[True].append((task, True))
                wake(True, end)
                heapq.heappush(heap, (end, w))
                continue
            if not ok:
                failures += 1
            end = start + cycles
            busy[w] += end - now
            clock[w] = end
            per_task[task.task_id] = cycles
            outstanding -= 1
            heapq.heappush(heap, (end, w))

        return MeasuredRunResult(
            system=system,
            makespan=max(clock),
            cpu_time=sum(busy),
            migrations=migrations,
            steals=steals,
            failures=failures,
            per_task_cycles=per_task,
        )


def varied_taskset(n_tasks: int, ext_share: float, *, seed: int = 11) -> list[HeteroTask]:
    """A §6.1-style mix with per-task size variation."""
    import random

    rng = random.Random(seed)
    from repro.core.scheduler import mixed_taskset

    tasks = []
    for t in mixed_taskset(n_tasks, ext_share):
        if t.kind == "base":
            size = rng.randrange(2000, 6001, 500)
        else:
            size = rng.choice((8, 10, 12, 14))
        tasks.append(HeteroTask(t.task_id, t.kind, size))
    return tasks
