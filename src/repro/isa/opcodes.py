"""Opcode and function-field constants for the implemented RISC-V subset."""

from __future__ import annotations

# Major opcodes (bits 6:0 of 32-bit instructions).
LOAD = 0x03
LOAD_FP = 0x07      # vector loads live here (RVV reuses LOAD-FP)
MISC_MEM = 0x0F
OP_IMM = 0x13
AUIPC = 0x17
OP_IMM_32 = 0x1B
STORE = 0x23
STORE_FP = 0x27     # vector stores
OP = 0x33
LUI = 0x37
OP_32 = 0x3B
OP_V = 0x57
BRANCH = 0x63
JALR = 0x67
JAL = 0x6F
SYSTEM = 0x73

# funct3 values for OP / OP_IMM.
F3_ADD_SUB = 0b000
F3_SLL = 0b001
F3_SLT = 0b010
F3_SLTU = 0b011
F3_XOR = 0b100
F3_SRL_SRA = 0b101
F3_OR = 0b110
F3_AND = 0b111

# funct3 values for LOAD/STORE widths.
F3_B = 0b000
F3_H = 0b001
F3_W = 0b010
F3_D = 0b011
F3_BU = 0b100
F3_HU = 0b101
F3_WU = 0b110

# funct3 values for BRANCH.
F3_BEQ = 0b000
F3_BNE = 0b001
F3_BLT = 0b100
F3_BGE = 0b101
F3_BLTU = 0b110
F3_BGEU = 0b111

# funct7 values.
F7_BASE = 0b0000000
F7_SUB_SRA = 0b0100000
F7_MULDIV = 0b0000001
F7_ZBA = 0b0010000

# RVV OP-V funct3 (operand categories).
OPIVV = 0b000
OPIVI = 0b011
OPIVX = 0b100
OPMVV = 0b010
OPMVX = 0b110
OPCFG = 0b111  # vsetvli family

# RVV funct6 values for the implemented subset.
V_ADD = 0b000000       # OPIVV/OPIVX/OPIVI vadd; OPMVV vredsum
V_SUB = 0b000010
V_MINU = 0b000100
V_MIN = 0b000101
V_MAXU = 0b000110
V_MAX = 0b000111
V_AND = 0b001001
V_OR = 0b001010
V_XOR = 0b001011
V_WXUNARY = 0b010000   # OPMVV: vmv.x.s (rs1 field = 0)
V_MV = 0b010111        # vmv.v.x / vmv.v.i (vs2 must be 0)
V_SLL = 0b100101       # OPIVV/OPIVX (same funct6 as vmul, different cat)
V_MUL = 0b100101       # OPMVV/OPMVX
V_SRL = 0b101000
V_SRA = 0b101001
V_MACC = 0b101101      # OPMVV

# RVV memory width field (funct3 of LOAD_FP/STORE_FP) for unit-stride.
VWIDTH_8 = 0b000
VWIDTH_16 = 0b101
VWIDTH_32 = 0b110
VWIDTH_64 = 0b111

# SEW encodings in vtype.
VSEW_CODES = {8: 0b000, 16: 0b001, 32: 0b010, 64: 0b011}
VSEW_FROM_CODE = {v: k for k, v in VSEW_CODES.items()}

# RVC quadrants (bits 1:0 of 16-bit parcels).
C_Q0 = 0b00
C_Q1 = 0b01
C_Q2 = 0b10
