"""Fault-isolated verified-rewrite pipeline with a crash-safe cache.

``rewrite_and_verify`` is the one-stop producer of a *released* binary:
it translates (``ChimeraRewriter``), then admits every patched region
through the static gate and seeded differential oracle
(:mod:`repro.verify.admission`).  With ``jobs > 1`` the per-region work
fans out across a **fault-isolated process pool** by default
(:mod:`repro.core.procpool`): a worker that crashes or hangs is killed,
attributed to its exact region as a structured
:class:`~repro.resilience.failures.RegionFault`, and the region is
re-dispatched under :data:`~repro.resilience.policy.PIPELINE_RETRY_POLICY`.
A region that exhausts its retries is quarantined and **degraded** —
re-admitted on the verified trap-fallback encoding
(:mod:`repro.verify.degrade`) or excluded — so a release always
completes with a machine-readable account of what was verified,
degraded, or refused.  ``--executor thread`` keeps the old shared
interpreter fan-out for debugging; results are deterministic for any
executor and job count: each oracle trial's RNG is derived from
``(seed, region, trial)`` alone and verdicts are merged in record
order, so the rewritten bytes and the
:class:`~repro.verify.report.VerifyReport` ledger are byte-identical
whether the pipeline ran serial, threaded, process-parallel, resumed,
or from cache — on fault-free inputs.

The cache is content-addressed: the key hashes the *input* binary's
sections, the rewriter configuration, and the gate configuration
(including the resolved seed).  Entries are crash-safe against
concurrent multi-process writers: each is published as ``<key>.self`` +
``<key>.report.json`` + a final ``<key>.meta.json`` carrying both
checksums (temp-file writes, atomic renames, the meta rename is the
commit point).  A torn, truncated, or checksum-mismatching entry is a
**miss-and-repair**: every on-disk piece is deleted (counter
``pipeline.cache_repairs``) and the release is rebuilt.  Temp files
orphaned by a crashed writer are garbage-collected after
:data:`_ORPHAN_TTL` seconds.

A resumable run journal (``<cache>/journal/<key>.jsonl``) records each
settled region verdict as it lands; a killed ``python -m repro verify``
rerun with the same inputs resumes from the completed regions instead
of restarting (torn tail lines are detected by checksum and dropped).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.rewriter import ChimeraRewriter, RewriteResult
from repro.elf.binary import Binary
from repro.elf.fileformat import FileFormatError, load_binary_file, save_binary
from repro.isa.extensions import IsaProfile
from repro.resilience.failures import (
    RESOLVED_DEGRADED,
    RESOLVED_EXCLUDED,
    RESOLVED_QUARANTINED,
    DeadlineExceededError,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.seeds import resolve_seed
from repro.telemetry import current as telemetry_current
from repro.verify.report import RegionVerdict, VerifyReport

#: Bump whenever the rewrite or verification output format changes in a
#: way the key ingredients do not capture.  v2: three-file entries with
#: a checksummed meta commit record.
_CACHE_SCHEMA = "chimera-rewrite-cache/v2"

#: Temp files older than this (seconds) are crash orphans: their writer
#: died between write and rename.  Collected opportunistically.  The
#: same TTL covers journals orphaned by a crashed driver: within the
#: TTL they are resume candidates, past it they are garbage.
_ORPHAN_TTL = 3600.0

#: Default wall-clock watchdog per region for the process executor.
DEFAULT_REGION_TIMEOUT = 60.0

#: Default shard fan-out for the serving cache (``repro serve``).  The
#: single-binary CLI keeps the flat layout (``shards=0``) unless asked.
DEFAULT_CACHE_SHARDS = 16


@dataclass(frozen=True)
class CacheLayout:
    """Where one release key lives inside a (possibly sharded) cache.

    ``shards == 0`` is the flat legacy layout: entries and the run
    journal sit directly under ``root``.  With ``shards == N`` the
    cache splits into ``root/shard-XX`` directories keyed by the
    release-key prefix, so concurrent service workers publishing
    different releases never contend on one directory's rename stream
    — and a torn entry, a crashed writer, or an LRU sweep in one shard
    can never touch another.  Each shard carries its own ``journal/``
    subdirectory and is orphan-GC'd independently.

    ``max_mb`` arms LRU eviction at publish time: the budget is split
    evenly across shards and the oldest-atime entries are evicted
    until the shard fits.
    """

    root: Path
    shards: int = 0
    max_mb: Optional[float] = None

    def __post_init__(self):
        object.__setattr__(self, "root", Path(self.root))
        if self.shards < 0:
            raise ValueError("shards must be >= 0")

    @classmethod
    def resolve(cls, cache_dir, shards: int = 0,
                max_mb: Optional[float] = None) -> Optional["CacheLayout"]:
        if cache_dir is None:
            return None
        if isinstance(cache_dir, CacheLayout):
            return cache_dir
        return cls(Path(cache_dir), shards, max_mb)

    def shard_index(self, key: str) -> int:
        """Shard for *key* — a pure function of the release-key prefix,
        so every worker, client, and admin command agrees forever."""
        if not self.shards:
            return 0
        return int(key[:8], 16) % self.shards

    def shard_name(self, key: str) -> str:
        return f"shard-{self.shard_index(key):02d}"

    def dir_for(self, key: str) -> Path:
        if not self.shards:
            return self.root
        return self.root / self.shard_name(key)

    def dirs(self) -> list[Path]:
        """Every shard directory (flat layout: just the root)."""
        if not self.shards:
            return [self.root]
        return [self.root / f"shard-{i:02d}" for i in range(self.shards)]

    @property
    def shard_budget_bytes(self) -> Optional[int]:
        if self.max_mb is None:
            return None
        return int(self.max_mb * 1024 * 1024) // max(1, self.shards or 1)


@dataclass
class PipelineResult:
    """Everything ``rewrite_and_verify`` produced for one binary."""

    result: RewriteResult
    report: VerifyReport
    cache_hit: bool = False
    #: Wall-clock seconds; zero for the skipped halves of a cache hit.
    rewrite_seconds: float = 0.0
    verify_seconds: float = 0.0
    #: Regions preloaded from the run journal of an interrupted run.
    resumed_regions: int = 0

    @property
    def binary(self) -> Binary:
        return self.result.binary

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def releasable(self) -> bool:
        return getattr(self.report, "releasable", self.report.ok)


def _rewriter_config(rewriter: ChimeraRewriter) -> dict:
    arch = rewriter.arch
    return {
        "mode": rewriter.mode,
        "batch_blocks": rewriter.batch_blocks,
        "shift_exits": rewriter.shift_exits,
        "enable_upgrades": rewriter.enable_upgrades,
        "scan_address_taken": rewriter.scan_address_taken,
        "smile_register": rewriter.smile_register,
        "use_smile": rewriter.use_smile,
        "arch": {k: v for k, v in vars(arch).items()},
    }


def cache_key(
    binary: Binary,
    target_profile: IsaProfile,
    rewriter: ChimeraRewriter,
    gate_config: dict,
) -> str:
    """Content hash of everything that determines the pipeline output."""
    h = hashlib.sha256()
    h.update(_CACHE_SCHEMA.encode())
    h.update(json.dumps({
        "entry": binary.entry,
        "gp": binary.global_pointer,
        "target": target_profile.name,
        "rewriter": _rewriter_config(rewriter),
        "gate": gate_config,
    }, sort_keys=True).encode())
    for section in sorted(binary.sections, key=lambda s: (s.name, s.addr)):
        h.update(f"\x00{section.name}\x00{section.addr}"
                 f"\x00{section.perm.value}\x00".encode())
        h.update(bytes(section.data))
    return h.hexdigest()


# -- crash-safe cache entries ------------------------------------------------


def _entry_paths(cache_dir: Path, key: str) -> tuple[Path, Path, Path]:
    return (cache_dir / f"{key}.self",
            cache_dir / f"{key}.report.json",
            cache_dir / f"{key}.meta.json")


def _repair_entry(cache_dir: Path, key: str, *, reason: str) -> None:
    """Delete every on-disk piece of a torn entry so it can never be
    re-read and re-rejected on a later run (miss-and-repair)."""
    removed = False
    for path in _entry_paths(cache_dir, key):
        try:
            path.unlink()
            removed = True
        except FileNotFoundError:
            pass
        except OSError:
            pass
    if removed:
        telemetry = telemetry_current()
        if telemetry.enabled:
            telemetry.metrics.inc("pipeline.cache_repairs", reason=reason)


def _load_cached(
    cache_dir: Path, key: str, target_profile: IsaProfile
) -> Optional[tuple[RewriteResult, VerifyReport]]:
    binary_path, report_path, meta_path = _entry_paths(cache_dir, key)
    present = [p for p in (binary_path, report_path, meta_path) if p.is_file()]
    if not present:
        return None  # clean miss
    if len(present) < 3:
        # Partial entry: the writer crashed between renames.
        _repair_entry(cache_dir, key, reason="partial")
        return None
    try:
        entry_meta = json.loads(meta_path.read_text())
        valid = (
            entry_meta.get("schema") == _CACHE_SCHEMA
            and hashlib.sha256(binary_path.read_bytes()).hexdigest()
            == entry_meta.get("self_sha256")
            and hashlib.sha256(report_path.read_bytes()).hexdigest()
            == entry_meta.get("report_sha256")
        )
    except (OSError, ValueError):
        valid = False
    if not valid:
        _repair_entry(cache_dir, key, reason="checksum")
        return None
    try:
        binary = load_binary_file(binary_path)
        report = VerifyReport.load(report_path)
    except (FileFormatError, OSError, KeyError, ValueError):
        _repair_entry(cache_dir, key, reason="decode")
        return None
    meta = binary.metadata.get("chimera")
    if meta is None or meta.get("patch_records") is None:
        _repair_entry(cache_dir, key, reason="pre-record")
        return None  # pre-record cache entry: not enough to re-release
    result = RewriteResult(binary, target_profile, meta.get("stats"))
    return result, report


def _store_cached(cache_dir: Path, key: str, result: RewriteResult,
                  report: VerifyReport) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    # Write via pid-unique temp names then rename: concurrent writers
    # never clobber each other's temps and a reader never sees a
    # half-written entry (rename is atomic within the directory).  The
    # meta record — carrying both checksums — is renamed last, making it
    # the commit point: without it the entry is partial and repaired.
    pid = os.getpid()
    binary_tmp = cache_dir / f".{key}.self.{pid}.tmp"
    report_tmp = cache_dir / f".{key}.report.json.{pid}.tmp"
    meta_tmp = cache_dir / f".{key}.meta.json.{pid}.tmp"
    binary_path, report_path, meta_path = _entry_paths(cache_dir, key)
    save_binary(result.binary, binary_tmp)
    report.write_json(report_tmp)
    meta_tmp.write_text(json.dumps({
        "schema": _CACHE_SCHEMA,
        "key": key,
        "self_sha256": hashlib.sha256(binary_tmp.read_bytes()).hexdigest(),
        "report_sha256": hashlib.sha256(report_tmp.read_bytes()).hexdigest(),
    }, sort_keys=True) + "\n")
    os.replace(binary_tmp, binary_path)
    os.replace(report_tmp, report_path)
    os.replace(meta_tmp, meta_path)


def _gc_orphans(cache_dir: Path, *, ttl: float = _ORPHAN_TTL,
                now: Optional[float] = None) -> dict[str, int]:
    """Collect crash debris in one cache (shard) directory.

    Two kinds of orphan, one TTL: temp files whose writer died between
    write and rename, and run journals whose *driver* died and never
    came back to resume (a completed run deletes its journal; a live
    resumable one keeps a fresh mtime because every settled region
    appends a line).  Returns ``{"temps": n, "journals": m}``.
    """
    swept = {"temps": 0, "journals": 0}
    if not cache_dir.is_dir():
        return swept
    telemetry = telemetry_current()
    now = time.time() if now is None else now
    for tmp in cache_dir.glob(".*.tmp"):
        try:
            if now - tmp.stat().st_mtime <= ttl:
                continue
            tmp.unlink()
        except OSError:
            continue
        swept["temps"] += 1
        if telemetry.enabled:
            telemetry.metrics.inc("pipeline.cache_orphans_gc")
    journal_dir = cache_dir / "journal"
    if journal_dir.is_dir():
        for journal in journal_dir.glob("*.jsonl"):
            try:
                if now - journal.stat().st_mtime <= ttl:
                    continue
                journal.unlink()
            except OSError:
                continue
            swept["journals"] += 1
            if telemetry.enabled:
                telemetry.metrics.inc("pipeline.journal_orphans_gc")
    return swept


def _cache_entries(cache_dir: Path) -> list[tuple[str, int, float]]:
    """Committed entries in one shard: (key, bytes, last-use stamp).

    The stamp is the newest atime/mtime across the entry's three files
    — on ``noatime`` mounts mtime still ranks entries by publish order.
    """
    entries = []
    for meta_path in cache_dir.glob("*.meta.json"):
        key = meta_path.name[: -len(".meta.json")]
        size = 0
        stamp = 0.0
        for path in _entry_paths(cache_dir, key):
            try:
                st = path.stat()
            except OSError:
                continue
            size += st.st_size
            stamp = max(stamp, st.st_atime, st.st_mtime)
        entries.append((key, size, stamp))
    return entries


def _evict_lru(cache_dir: Path, budget_bytes: int,
               protect_key: Optional[str] = None) -> int:
    """Evict oldest-last-used entries until the shard fits the budget.

    Runs at publish time (and from ``repro cache gc``), never evicts
    the entry just published, and removes whole entries atomically-ish
    (meta first, so a concurrent reader sees a partial entry and treats
    it as a miss — exactly the torn-entry path it already survives).
    """
    entries = _cache_entries(cache_dir)
    total = sum(size for _, size, _ in entries)
    if total <= budget_bytes:
        return 0
    telemetry = telemetry_current()
    evicted = 0
    for key, size, _ in sorted(entries, key=lambda e: e[2]):
        if total <= budget_bytes:
            break
        if key == protect_key:
            continue
        binary_path, report_path, meta_path = _entry_paths(cache_dir, key)
        for path in (meta_path, binary_path, report_path):
            try:
                path.unlink()
            except OSError:
                pass
        total -= size
        evicted += 1
        if telemetry.enabled:
            telemetry.metrics.inc("pipeline.cache_evictions")
    return evicted


# -- cache administration (``repro cache stats|gc``) -------------------------


def cache_stats(layout: CacheLayout) -> dict:
    """Machine-readable census of a (sharded) rewrite cache."""
    shards = []
    for shard_dir in layout.dirs():
        entries = _cache_entries(shard_dir) if shard_dir.is_dir() else []
        journal_dir = shard_dir / "journal"
        journals = (len(list(journal_dir.glob("*.jsonl")))
                    if journal_dir.is_dir() else 0)
        temps = (len(list(shard_dir.glob(".*.tmp")))
                 if shard_dir.is_dir() else 0)
        shards.append({
            "dir": str(shard_dir),
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "journals": journals,
            "temps": temps,
        })
    return {
        "schema": "repro.cache/stats/v1",
        "root": str(layout.root),
        "shards": layout.shards,
        "max_mb": layout.max_mb,
        "entries": sum(s["entries"] for s in shards),
        "bytes": sum(s["bytes"] for s in shards),
        "journals": sum(s["journals"] for s in shards),
        "temps": sum(s["temps"] for s in shards),
        "per_shard": shards,
    }


def cache_gc(layout: CacheLayout, *, ttl: float = _ORPHAN_TTL,
             now: Optional[float] = None) -> dict:
    """Sweep every shard: orphaned temps, orphaned journals, and (when
    the layout carries a budget) LRU eviction down to it."""
    swept = {"temps": 0, "journals": 0, "evicted": 0}
    budget = layout.shard_budget_bytes
    for shard_dir in layout.dirs():
        if not shard_dir.is_dir():
            continue
        shard_swept = _gc_orphans(shard_dir, ttl=ttl, now=now)
        swept["temps"] += shard_swept["temps"]
        swept["journals"] += shard_swept["journals"]
        if budget is not None:
            swept["evicted"] += _evict_lru(shard_dir, budget)
    return swept


# -- resumable run journal ---------------------------------------------------


class RunJournal:
    """Append-only ledger of settled region verdicts for one release key.

    One JSON line per record, each carrying a CRC of its own payload:
    a process killed mid-write leaves a torn tail line that fails the
    CRC (or does not parse) and is simply dropped — every line before it
    resumes.  The journal is deleted when the run completes.
    """

    def __init__(self, cache_dir: Path, key: str, *, regions: int, seed: int):
        self.path = cache_dir / "journal" / f"{key}.jsonl"
        self.key = key
        self.regions = regions
        self.seed = seed
        self.records_written = 0
        self._fh = None

    def load(self) -> dict[int, tuple[dict, bool]]:
        """Validated (index -> (verdict dict, oracle_ran)) entries from a
        previous interrupted run; empty when absent or unusable."""
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return {}
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except ValueError:
            return {}
        if (header.get("t") != "h" or header.get("schema") != _CACHE_SCHEMA
                or header.get("key") != self.key
                or header.get("regions") != self.regions
                or header.get("seed") != self.seed):
            return {}
        entries: dict[int, tuple[dict, bool]] = {}
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn tail: the writer died mid-line
            if record.get("t") != "r":
                break
            payload = {"i": record.get("i"), "o": record.get("o"),
                       "v": record.get("v")}
            crc = zlib.crc32(json.dumps(payload, sort_keys=True).encode())
            if record.get("c") != crc:
                break  # torn tail: payload does not match its checksum
            entries[payload["i"]] = (payload["v"], payload["o"])
        return entries

    def start(self, resumed: int) -> None:
        """Open for appending.  A fresh run (or an unusable journal)
        truncates and rewrites the header; a resumed run appends."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if resumed else "w"
        self._fh = open(self.path, mode)
        if not resumed:
            header = {"t": "h", "schema": _CACHE_SCHEMA, "key": self.key,
                      "regions": self.regions, "seed": self.seed}
            self._fh.write(json.dumps(header, sort_keys=True) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self.records_written = resumed

    def record(self, idx: int, verdict: dict, oracle_ran: bool) -> None:
        if self._fh is None:
            return
        payload = {"i": idx, "o": oracle_ran, "v": verdict}
        crc = zlib.crc32(json.dumps(payload, sort_keys=True).encode())
        line = json.dumps({"t": "r", "c": crc, **payload}, sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records_written += 1

    def complete(self) -> None:
        """The run finished: the journal has nothing left to resume."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# -- quarantine-and-degrade --------------------------------------------------


def _degrade_quarantined(
    original: Binary,
    result: RewriteResult,
    report: VerifyReport,
    gate_config: dict,
    liveness,
    telemetry,
) -> None:
    """Re-admit quarantined regions on the trap fallback (or exclude).

    Each quarantined smile/smile-dp region is statically rolled back to
    original bytes + trap-trampoline sources, then its replacement
    records go through a fresh, injector-free serial admission gate.
    Success flips the region's faults to ``degraded-trap`` and appends
    the new verdicts to the ledger; anything else is ``excluded``.
    """
    from repro.verify.degrade import DegradeError, degrade_region_to_trap

    faults = getattr(report, "faults", None) or []
    quarantined = [f for f in faults if f.resolution == RESOLVED_QUARANTINED]
    if not quarantined:
        return
    starts = sorted({f.start for f in quarantined})
    with telemetry.span("pipeline.degrade", binary=result.binary.name,
                        regions=len(starts)):
        for start in starts:
            region_faults = [f for f in quarantined if f.start == start]
            meta = result.binary.metadata.get("chimera") or {}
            rec = next((r for r in meta.get("patch_records", ())
                        if r.start == start), None)
            if rec is None or rec.kind == "trap":
                for fault in region_faults:
                    fault.resolution = RESOLVED_EXCLUDED
                continue
            try:
                new_records = degrade_region_to_trap(result.binary, rec)
            except DegradeError:
                for fault in region_faults:
                    fault.resolution = RESOLVED_EXCLUDED
                continue
            verdicts, admitted = _verify_degraded(
                original, result, new_records, gate_config, liveness)
            report.regions.extend(verdicts)
            resolution = RESOLVED_DEGRADED if admitted else RESOLVED_EXCLUDED
            for fault in region_faults:
                fault.resolution = resolution
            if telemetry.enabled:
                telemetry.metrics.inc(
                    "pipeline.regions_degraded",
                    outcome="degraded-trap" if admitted else "excluded")


def _verify_degraded(original, result, new_records, gate_config, liveness):
    """Gate the replacement trap records; (verdicts, all_admitted)."""
    from repro.verify.admission import AdmissionGate

    if not new_records:
        return [], True  # restore-only degrade: nothing left to verify
    gate = AdmissionGate(
        original, result.binary,
        seed=gate_config["seed"],
        oracle_trials=gate_config["oracle_trials"],
        oracle_max_steps=gate_config["oracle_max_steps"],
        max_oracle_regions=0,
        jobs=1, executor="serial", liveness=liveness)
    wanted = {rec.start for rec in new_records}
    verdicts = []
    for idx, rec in enumerate(gate.records):
        if rec.start in wanted:
            verdict, _ = gate.verify_region_once(idx)
            verdicts.append(verdict)
    return verdicts, all(v.admitted for v in verdicts)


# -- the pipeline ------------------------------------------------------------


def rewrite_and_verify(
    binary: Binary,
    target_profile: IsaProfile,
    *,
    rewriter: Optional[ChimeraRewriter] = None,
    seed: Optional[int] = None,
    oracle_trials: int = 2,
    oracle_max_steps: int = 512,
    max_oracle_regions: int = 0,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path, CacheLayout]] = None,
    cache_shards: int = 0,
    cache_max_mb: Optional[float] = None,
    executor: Optional[str] = None,
    region_timeout: Optional[float] = DEFAULT_REGION_TIMEOUT,
    resume: bool = True,
    degrade: str = "trap",
    retry_policy: Optional[RetryPolicy] = None,
    failure_injector=None,
    slots=None,
    job_id=None,
    on_progress=None,
    deadline: Optional[float] = None,
) -> PipelineResult:
    """Translate *binary* for *target_profile* and admission-verify it.

    ``executor`` is "serial", "thread", or "process"; None auto-selects
    "process" when ``jobs > 1`` (fault isolation plus real parallelism
    for the pure-Python oracle) and "serial" otherwise.  ``degrade``
    picks what happens to a region that exhausts its retry budget:
    "trap" re-admits it on the verified trap-fallback encoding,
    "exclude" drops it with the fault recorded in the ledger.

    ``cache_dir`` may be a directory (flat cache, optionally fanned out
    by ``cache_shards`` / size-capped by ``cache_max_mb``) or a
    ready-made :class:`CacheLayout`.  ``slots`` is an optional
    :class:`~repro.core.procpool.WorkerSlotArbiter` the batch service
    shares across concurrent jobs; ``on_progress(stage, **info)`` (when
    given) fires at each pipeline stage boundary and per settled region
    — the service streams these to its clients.

    ``deadline`` is an absolute ``time.monotonic()`` instant: once it
    passes, the run dies with a structured
    :class:`~repro.resilience.failures.DeadlineExceededError` from
    whatever layer notices first (here before the rewrite, the
    admission gate between regions, the process pool between
    dispatches).  The run journal written so far is kept, so a later
    retry of the same key resumes instead of restarting.
    """
    if deadline is not None and time.monotonic() > deadline:
        raise DeadlineExceededError(
            f"job deadline expired before rewrite of {binary.name}")
    rewriter = rewriter or ChimeraRewriter()
    seed = resolve_seed(seed)
    telemetry = telemetry_current()
    if executor is None:
        executor = "process" if jobs > 1 else "serial"
    if degrade not in ("trap", "exclude"):
        raise ValueError(f"degrade must be 'trap' or 'exclude', not {degrade!r}")
    gate_config = {
        "seed": seed,
        "oracle_trials": oracle_trials,
        "oracle_max_steps": oracle_max_steps,
        "max_oracle_regions": max_oracle_regions,
    }

    layout = CacheLayout.resolve(cache_dir, cache_shards, cache_max_mb)
    cache_path = None
    key = None
    if layout is not None:
        key = cache_key(binary, target_profile, rewriter, gate_config)
        cache_path = layout.dir_for(key)
        _gc_orphans(cache_path)
        cached = _load_cached(cache_path, key, target_profile)
        if cached is not None:
            if telemetry.enabled:
                telemetry.metrics.inc("pipeline.rewrite_cache_hits",
                                      binary=binary.name,
                                      target=target_profile.name)
            result, report = cached
            if on_progress is not None:
                on_progress("cache-hit", key=key)
            return PipelineResult(result, report, cache_hit=True)
        if telemetry.enabled:
            telemetry.metrics.inc("pipeline.rewrite_cache_misses",
                                  binary=binary.name,
                                  target=target_profile.name)

    # Attribute access at call time so tests monkeypatching
    # ``repro.verify.verify_binary`` intercept the pipeline too.
    from repro import verify as verify_mod

    with telemetry.span("pipeline.rewrite_verify", binary=binary.name,
                        target=target_profile.name, jobs=jobs,
                        executor=executor):
        if on_progress is not None:
            on_progress("rewrite", binary=binary.name)
        t0 = time.perf_counter()
        result = rewriter.rewrite(binary, target_profile)
        t1 = time.perf_counter()

        journal = None
        precomputed = None
        resumed = 0
        if cache_path is not None and key is not None:
            records = (result.binary.metadata.get("chimera") or {}).get(
                "patch_records") or ()
            journal = RunJournal(cache_path, key, regions=len(records),
                                 seed=seed)
            if resume:
                loaded = journal.load()
                if loaded:
                    precomputed = {
                        idx: (RegionVerdict.from_dict(verdict), oracle_ran)
                        for idx, (verdict, oracle_ran) in loaded.items()}
                    resumed = len(precomputed)
                    if telemetry.enabled:
                        telemetry.metrics.inc("pipeline.journal_resumes",
                                              binary=binary.name)
                        telemetry.metrics.inc("pipeline.regions_resumed",
                                              resumed, binary=binary.name)
            journal.start(resumed)

        settled = resumed

        total_regions = len((result.binary.metadata.get("chimera") or {})
                            .get("patch_records") or ())

        def on_region(idx: int, verdict: RegionVerdict,
                      oracle_ran: bool) -> None:
            nonlocal settled
            if journal is not None:
                journal.record(idx, verdict.as_dict(), oracle_ran)
            settled += 1
            if failure_injector is not None:
                failure_injector.on_journal_record(settled)
            if on_progress is not None:
                on_progress("region", settled=settled, regions=total_regions)

        if on_progress is not None:
            on_progress("verify", regions=total_regions, executor=executor)
        extra_verify = {}
        if slots is not None:
            extra_verify["slots"] = slots
            extra_verify["job_id"] = job_id if job_id is not None else key
        try:
            report = verify_mod.verify_binary(
                binary, result.binary, seed=seed,
                oracle_trials=oracle_trials,
                oracle_max_steps=oracle_max_steps,
                max_oracle_regions=max_oracle_regions, jobs=jobs,
                liveness=result.liveness,
                executor=executor, region_timeout=region_timeout,
                retry_policy=retry_policy, injector=failure_injector,
                on_region=on_region, precomputed=precomputed,
                deadline=deadline,
                **extra_verify,
            )
        except BaseException:
            # Killed mid-run (or injected kill): the journal keeps every
            # settled region for the resuming rerun.
            if journal is not None:
                journal.close()
            raise
        t2 = time.perf_counter()

    faults = getattr(report, "faults", None)
    if faults:
        if degrade == "trap":
            _degrade_quarantined(binary, result, report, gate_config,
                                 result.liveness, telemetry)
        else:
            for fault in faults:
                if fault.resolution == RESOLVED_QUARANTINED:
                    fault.resolution = RESOLVED_EXCLUDED

    if journal is not None:
        journal.complete()
    if cache_path is not None and not getattr(report, "quarantined_starts",
                                              frozenset()):
        # Degraded or excluded releases are never cached: the cache key
        # promises the deterministic fault-free output for these inputs.
        _store_cached(cache_path, key, result, report)
        budget = layout.shard_budget_bytes
        if budget is not None:
            # Publish-time LRU sweep: the shard never outgrows its slice
            # of --cache-max-mb, and the entry just published survives.
            _evict_lru(cache_path, budget, protect_key=key)
    if on_progress is not None:
        on_progress("published", key=key, ok=report.ok)
    return PipelineResult(result, report, cache_hit=False,
                          rewrite_seconds=t1 - t0, verify_seconds=t2 - t1,
                          resumed_regions=resumed)


# -- job-shaped entry point (the serving surface) ----------------------------


@dataclass(frozen=True)
class RewriteJob:
    """One service-shaped unit of work: translate + verify one binary.

    This is the currency of ``python -m repro serve``: the server
    resolves each submit message into a :class:`RewriteJob`, computes
    its :func:`release_key` for dedup/sharding, and drives it through
    :func:`run_job` on a worker thread.  Everything that determines the
    released bytes lives in the job, so two jobs with equal keys are
    interchangeable by construction.
    """

    binary: Binary
    target: str = "rv64gc"
    seed: Optional[int] = None
    oracle_trials: int = 2
    oracle_max_steps: int = 512
    max_oracle_regions: int = 0
    jobs: int = 1
    executor: Optional[str] = None
    region_timeout: Optional[float] = DEFAULT_REGION_TIMEOUT
    #: Absolute ``time.monotonic()`` deadline for the whole run, or
    #: None.  Deliberately *not* part of the release key: a job's time
    #: budget never changes the bytes it would release.
    deadline: Optional[float] = None

    def profile(self) -> IsaProfile:
        from repro.isa.extensions import PROFILES

        try:
            return PROFILES[self.target]
        except KeyError:
            raise ValueError(
                f"unknown ISA profile {self.target!r}; "
                f"choose from {sorted(PROFILES)}") from None


def release_key(job: RewriteJob,
                rewriter: Optional[ChimeraRewriter] = None) -> str:
    """The content-addressed release key a job will publish under —
    exactly the :func:`cache_key` ``run_job`` resolves, computed ahead
    of time so the server can dedup and route before any work runs."""
    rewriter = rewriter or ChimeraRewriter()
    gate_config = {
        "seed": resolve_seed(job.seed),
        "oracle_trials": job.oracle_trials,
        "oracle_max_steps": job.oracle_max_steps,
        "max_oracle_regions": job.max_oracle_regions,
    }
    return cache_key(job.binary, job.profile(), rewriter, gate_config)


def run_job(
    job: RewriteJob,
    *,
    cache: Optional[Union[str, Path, CacheLayout]] = None,
    slots=None,
    job_id=None,
    on_progress=None,
    retry_policy: Optional[RetryPolicy] = None,
) -> PipelineResult:
    """Drive one :class:`RewriteJob` through the verified pipeline."""
    return rewrite_and_verify(
        job.binary, job.profile(),
        seed=job.seed,
        oracle_trials=job.oracle_trials,
        oracle_max_steps=job.oracle_max_steps,
        max_oracle_regions=job.max_oracle_regions,
        jobs=job.jobs,
        cache_dir=cache,
        executor=job.executor,
        region_timeout=job.region_timeout,
        retry_policy=retry_policy,
        slots=slots,
        job_id=job_id,
        on_progress=on_progress,
        deadline=job.deadline,
    )
