"""Integration tests for the telemetry subsystem across the pipeline.

The ISSUE's acceptance gates, executed for real: one traced workload
must light up non-zero series from all four layers (rewriting,
scheduling, simulation, resilience), the written artifacts must be a
valid Chrome trace + schema-v1 metrics document, and the chaos
sweeper's metrics ledger must agree exactly with the sweep report's
outcome taxonomy — the same single-source-of-truth property the
scheduler stats got.
"""

import json

import pytest

from repro.chaos import sweep_binary
from repro.telemetry import Telemetry, use
from repro.telemetry.export import validate_metrics_file
from repro.telemetry.pipeline import (
    run_traced_workload,
    verify_four_layers,
)
from repro.telemetry.spans import spans_from_chrome
from repro.workloads.programs import ALL_WORKLOADS


@pytest.fixture(scope="module")
def traced():
    return run_traced_workload("dot")


class TestFourLayers:
    def test_workload_completes(self, traced):
        assert traced.ok, (traced.exit_code, traced.fault)
        assert traced.instret > 0

    def test_all_four_layers_nonzero(self, traced):
        missing = verify_four_layers(traced.telemetry.metrics)
        assert missing == [], f"layers without series: {missing}"

    def test_instruction_classes_recorded(self, traced):
        metrics = traced.telemetry.metrics
        classes = {labels["class"] for labels, _ in metrics.series("cpu.instret")}
        assert "base" in classes
        assert metrics.total("cpu.instret") > 0

    def test_span_tree_covers_pipeline_phases(self, traced):
        tracer = traced.telemetry.tracer
        for name in ("trace.pipeline", "trace.build", "trace.execute",
                     "trace.schedule_probe", "rewrite", "sim.run"):
            assert tracer.find(name), f"missing span {name}"
        pipeline = tracer.find("trace.pipeline")[0]
        execute = tracer.find("trace.execute")[0]
        assert pipeline.depth < execute.depth
        assert pipeline.start_us <= execute.start_us
        assert execute.end_us <= pipeline.end_us


class TestArtifacts:
    def test_written_files_validate(self, traced, tmp_path):
        paths = traced.telemetry.write(tmp_path)
        assert validate_metrics_file(paths["metrics"]) == []
        with open(paths["trace"]) as fh:
            trace = json.load(fh)
        events = trace["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        rebuilt = spans_from_chrome(trace)
        assert len(rebuilt) == len(traced.telemetry.tracer.completed)

    def test_metrics_payload_matches_registry(self, traced, tmp_path):
        paths = traced.telemetry.write(tmp_path)
        with open(paths["metrics"]) as fh:
            payload = json.load(fh)
        ledger = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in payload["counters"]
        }
        metrics = traced.telemetry.metrics
        for (name, labels), value in ledger.items():
            assert metrics.counter(name, **dict(labels)) == value


class TestChaosLedger:
    def test_sweep_metrics_match_outcome_taxonomy(self):
        """chaos.outcomes{mode,outcome} must equal SweepReport.counts()
        exactly — the metrics ledger and the report are two views of the
        same attacks."""
        binary = ALL_WORKLOADS["dot"].build("ext")
        telemetry = Telemetry()
        with use(telemetry):
            report = sweep_binary(binary, mode="smile")
        assert report.results, "dot must have patched regions to attack"
        counts = {k: v for k, v in report.counts().items() if v}
        ledger = {
            labels["outcome"]: value
            for labels, value in telemetry.metrics.series("chaos.outcomes")
            if labels["mode"] == "smile"
        }
        assert ledger == counts
        assert telemetry.metrics.total("chaos.outcomes") == len(report.results)
